//! Demagnetizing (dipolar) field.
//!
//! Two implementations are provided:
//!
//! * [`ThinFilmDemag`] — the local thin-film limit `H_d = −Ms·m_z·ẑ`
//!   (demag tensor N = diag(0, 0, 1)). For the paper's 1 nm film this is
//!   the textbook approximation; it merges with the perpendicular
//!   anisotropy into the effective field that sets the FVMSW dispersion.
//! * [`NewellDemag`] — the full non-local field computed by convolving the
//!   magnetization with the Newell demagnetization tensor via the
//!   crate's own FFT. Exact for the discretization, but O(N log N) per
//!   evaluation; used for validation and ablation studies.
//!
//! ## Real-spectrum convolution pipeline
//!
//! The padded grid is chosen by [`crate::fft::good_size`]: the cheapest
//! 5-smooth length ≥ `2n − 1` per axis (see [`PadPolicy`]), which is
//! exactly the aliasing-free minimum for a linear convolution — every
//! physical displacement `|Δ| ≤ n − 1` has a unique wrapped kernel
//! entry. At awkward grid sizes this cuts the padded area by up to
//! ~2.5× against the old power-of-two padding.
//!
//! The Newell kernels are symmetric in real space — `Kxx/Kyy/Kzz` are
//! even in both offsets, `Kxy` is odd in each but even under full
//! inversion — so their 2-D DFTs are purely real. (At even padded sizes
//! the `Kxy` Nyquist rows `2jx = px` / `2jy = py` are the one exception:
//! they map to themselves under inversion while the function is odd
//! across them. Those kernel entries only ever influence the discarded
//! padding region — every physical output–input displacement satisfies
//! `|Δ| ≤ n−1 < p/2` — so they are zeroed before the transform, making
//! the spectrum exactly real without changing the physical field. Odd
//! padded sizes have no self-paired line, so nothing is zeroed.)
//!
//! Storing the spectra as `Vec<f64>` halves the kernel memory and turns
//! the spectral multiply into real×complex products. Each evaluation then
//! costs four 2-D transforms instead of six: `Ms·mx` and `Ms·my` are
//! packed into one complex grid (re/im channels), convolved per
//! conjugate-pair of bins, and the two output fields come back out of a
//! single inverse transform's re/im channels; `Ms·mz` rides alone through
//! the second pair of transforms (its kernel multiply is a plain real
//! scaling per bin).
//!
//! Every stage — grid load, row/column FFT batches, per-pair spectral
//! multiply, field unload — runs on the caller's [`WorkerTeam`] with
//! per-bin arithmetic independent of the block partition, so results are
//! bitwise identical at any thread count, and identical to the
//! single-threaded fallback used by [`FieldTerm::accumulate`].
//!
//! ## Transposed-spectrum pipeline
//!
//! Each channel's round trip uses [`Fft2Plan::forward_spectrum`] /
//! [`Fft2Plan::inverse_spectrum`]: the forward stops after the column
//! pass, leaving the spectrum in x-major layout (bin `(kx, ky)` at
//! `kx·py + ky`), the kernel spectra are stored in the same layout, and
//! the inverse starts from it — eliminating two full-grid transposes per
//! channel (four of the eight data-movement passes per eval) relative to
//! round-tripping through row-major spectra. A transpose is pure data
//! movement, so every bin sees identical arithmetic and the fields are
//! bitwise unchanged.
//!
//! All FFT and spectral passes sit behind the cells-per-thread clamp
//! ([`crate::fft::MIN_FFT_CELLS_PER_THREAD`], overridable through
//! [`NewellDemag::with_options`]): small padded grids run the whole
//! convolution inline on the calling thread, where rendezvous overhead
//! would otherwise exceed the parallel win. The per-system
//! [`DemagScratch`] arena (padded planes + per-thread FFT row scratch)
//! makes steady-state evaluations allocation-free.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::{FieldTerm, FusedTerm};
use crate::fft::{good_size, next_power_of_two, Fft2Plan, Fft2Scratch, MIN_FFT_CELLS_PER_THREAD};
use crate::field3::Field3;
use crate::material::Material;
use crate::math::{Complex64, Vec3};
use crate::mesh::Mesh;
use crate::par::{effective_threads, SendPtr, WorkerTeam};

/// Which demagnetization model a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemagMethod {
    /// No demagnetizing field at all.
    None,
    /// Local thin-film approximation `H_d = −Ms·m_z·ẑ` (default: correct
    /// limit for films much thinner than their lateral extent).
    #[default]
    ThinFilmLocal,
    /// Full non-local Newell-tensor convolution via FFT.
    NewellFft,
}

/// How [`NewellDemag`] pads each axis for the linear convolution.
///
/// Both policies are aliasing-free; they differ only in which transform
/// lengths they allow. Distinct policies over the same mesh generally
/// produce distinct padded grids, and therefore distinct entries in the
/// process-wide kernel-spectrum cache (the key leads with `(px, py)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PadPolicy {
    /// Cheapest 5-smooth length ≥ `2n − 1` via [`good_size`] — the
    /// mixed-radix default, up to ~2.5× less padded area in 2-D.
    #[default]
    GoodSize,
    /// Smallest power of two ≥ `2n` — the radix-2-only rule, kept as the
    /// baseline for benchmarks and ablation.
    PowerOfTwo,
    /// Exactly `2n − 1`, the aliasing-free minimum with no smoothness
    /// constraint. The padded lengths are always odd and frequently
    /// prime, which forces the Bluestein chirp-z fallback — slower than
    /// [`PadPolicy::GoodSize`], but the only policy that drives the
    /// fallback through real trajectories; used by the parity tests (and
    /// available for memory-starved grids where even `good_size` slack
    /// is unwelcome).
    Exact,
}

impl PadPolicy {
    /// Padded transform length for a physical axis of `n` cells.
    pub fn pad(self, n: usize) -> usize {
        match self {
            PadPolicy::GoodSize => good_size(2 * n - 1),
            PadPolicy::PowerOfTwo => next_power_of_two(2 * n),
            PadPolicy::Exact => 2 * n - 1,
        }
    }
}

/// Local thin-film demagnetizing field (see [`DemagMethod::ThinFilmLocal`]).
#[derive(Debug, Clone)]
pub struct ThinFilmDemag {
    ms: f64,
    mask: Vec<bool>,
}

impl ThinFilmDemag {
    /// Builds the local demag term.
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        ThinFilmDemag {
            ms: material.saturation_magnetization(),
            mask: mesh.mask().to_vec(),
        }
    }
}

impl FieldTerm for ThinFilmDemag {
    fn name(&self) -> &'static str {
        "demag_thin_film"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        for (i, (mi, hi)) in m.iter().zip(h.iter_mut()).enumerate() {
            if self.mask[i] {
                hi.z -= self.ms * mi.z;
            }
        }
    }

    fn fused(&self) -> Option<FusedTerm> {
        Some(FusedTerm::ThinFilm { ms: self.ms })
    }
}

/// Non-local demagnetizing field via Newell-tensor FFT convolution
/// (see [`DemagMethod::NewellFft`] and the module docs for the pipeline).
///
/// The real spectral kernels are precomputed once at construction; each
/// field evaluation costs four parallel 2-D FFTs on the zero-padded grid.
pub struct NewellDemag {
    nx: usize,
    ny: usize,
    px: usize,
    py: usize,
    ms: f64,
    mask: Vec<bool>,
    /// Real spectra of K = −N (so that Ĥ = K̂·M̂) in x-major spectrum
    /// layout, shared through the in-process cache; see module docs for
    /// why they are exactly real.
    spectra: Arc<KernelSpectra>,
    plan: Fft2Plan,
    /// Cells-per-thread clamp applied to every convolution pass
    /// (`0` disables it); mirrors the plan's own clamp.
    min_cells_per_thread: usize,
}

/// Working buffers for one convolution, sized to the padded grid — the
/// per-system scratch arena: three padded planes plus the per-thread FFT
/// row scratch, all reused across evaluations so the integrator hot loop
/// never allocates.
struct DemagScratch {
    /// Packed `Ms·mx + i·Ms·my` grid, becomes `hx + i·hy` after the
    /// inverse transform.
    xy: Vec<Complex64>,
    /// `Ms·mz` grid (imaginary channel unused).
    z: Vec<Complex64>,
    /// X-major spectrum plane; the two channels round-trip through it
    /// sequentially, so one plane serves both.
    spec: Vec<Complex64>,
    /// Per-thread 1-D row scratch (Bluestein axes only).
    fft: Fft2Scratch,
}

impl DemagScratch {
    fn new(padded: usize) -> Self {
        // Constructing scratch is itself a hot-path allocation: legal at
        // system build or on the cold `accumulate` path, counted so the
        // allocation-free-stepping test catches any per-eval construction.
        crate::fft::note_hot_alloc();
        DemagScratch {
            xy: vec![Complex64::ZERO; padded],
            z: vec![Complex64::ZERO; padded],
            spec: vec![Complex64::ZERO; padded],
            fft: Fft2Scratch::new(),
        }
    }
}

/// The four real Newell kernel spectra of one padded grid, in the order
/// they are applied (`Kxx`, `Kyy`, `Kzz`, `Kxy`).
///
/// Instances are immutable and shared via [`Arc`] through a process-wide
/// cache, so a batch of simulations over the same geometry (the `swrun`
/// sweep case: many jobs, one mesh) pays the O(P·27) Newell pre-pass and
/// the four kernel FFTs exactly once.
#[derive(Debug)]
struct KernelSpectra {
    kxx: Vec<f64>,
    kyy: Vec<f64>,
    kzz: Vec<f64>,
    kxy: Vec<f64>,
}

/// Cache key: padded grid dimensions plus the cell size as exact bit
/// patterns. The padded sizes are derived from `(nx, ny)` and `dz` is the
/// film thickness, so the key subsumes the mesh identity
/// `(nx, ny, dx, dy, dz)` — it is strictly more general: meshes that pad
/// to the same grid with the same cell share one kernel table.
type SpectraKey = (usize, usize, u64, u64, u64);

static SPECTRA_CACHE: OnceLock<Mutex<HashMap<SpectraKey, Arc<KernelSpectra>>>> = OnceLock::new();

/// Fetches the real kernel spectra for a padded grid from the process-wide
/// cache, building them on first use.
///
/// The lock is held across the build on purpose: concurrent constructions
/// of the same geometry (parallel batch jobs) block on one build instead
/// of duplicating it. Which worker team performs the build does not matter
/// for the cached values — [`kernel_spectra`] is bitwise identical for any
/// team size.
fn cached_spectra(
    px: usize,
    py: usize,
    cell: [f64; 3],
    plan: &Fft2Plan,
    team: &WorkerTeam,
) -> Arc<KernelSpectra> {
    let [dx, dy, dz] = cell;
    let key = (px, py, dx.to_bits(), dy.to_bits(), dz.to_bits());
    let cache = SPECTRA_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("demag spectra cache poisoned");
    Arc::clone(map.entry(key).or_insert_with(|| {
        let spectra = kernel_spectra(px, py, cell, plan, team);
        let mut max_re: f64 = 0.0;
        let mut max_im: f64 = 0.0;
        for k in &spectra {
            for z in k.iter() {
                max_re = max_re.max(z.re.abs());
                max_im = max_im.max(z.im.abs());
            }
        }
        assert!(
            max_im <= 1e-10 * max_re,
            "Newell spectra should be real: max |Im| = {max_im:e} vs max |Re| = {max_re:e}"
        );
        let [kxx, kyy, kzz, kxy] = spectra.map(|k| k.iter().map(|z| z.re).collect());
        Arc::new(KernelSpectra { kxx, kyy, kzz, kxy })
    }))
}

impl NewellDemag {
    /// Precomputes the demag kernel for the mesh (single layer), serially.
    ///
    /// Construction cost is O(P·27) Newell evaluations for P padded cells;
    /// this is done once per simulation. [`NewellDemag::new_with_team`]
    /// spreads the pre-pass over a worker team.
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        Self::new_with_team(mesh, material, &WorkerTeam::new(1))
    }

    /// Precomputes the demag kernel with the Newell pre-pass and the
    /// kernel FFTs batched across `team`. Bitwise identical to
    /// [`NewellDemag::new`] for any team size.
    ///
    /// The kernel spectra are looked up in a process-wide cache keyed by
    /// the padded grid and cell size, so repeated constructions over the
    /// same geometry (batch sweeps) share one table; only the FFT plan and
    /// scratch buffers are per-instance.
    pub fn new_with_team(mesh: &Mesh, material: &Material, team: &WorkerTeam) -> Self {
        Self::with_padding(mesh, material, team, PadPolicy::default())
    }

    /// Like [`NewellDemag::new_with_team`], with an explicit padding
    /// policy. [`PadPolicy::PowerOfTwo`] reproduces the radix-2-only
    /// padded grids — the baseline the `--bigfft` bench measures the
    /// mixed-radix speedup against.
    pub fn with_padding(
        mesh: &Mesh,
        material: &Material,
        team: &WorkerTeam,
        policy: PadPolicy,
    ) -> Self {
        Self::with_options(mesh, material, team, policy, None)
    }

    /// Fully explicit constructor: padding policy plus the
    /// cells-per-thread clamp for the convolution passes. `None` takes
    /// the [`MIN_FFT_CELLS_PER_THREAD`] default; `Some(0)` disables the
    /// clamp (every pass fans out — what cross-thread parity tests
    /// want); other values set the threshold directly.
    pub fn with_options(
        mesh: &Mesh,
        material: &Material,
        team: &WorkerTeam,
        policy: PadPolicy,
        min_cells_per_thread: Option<usize>,
    ) -> Self {
        let nx = mesh.nx();
        let ny = mesh.ny();
        let px = policy.pad(nx);
        let py = policy.pad(ny);
        let min = min_cells_per_thread.unwrap_or(MIN_FFT_CELLS_PER_THREAD);
        let plan = Fft2Plan::new(px, py).with_min_cells_per_thread(min);
        let spectra = cached_spectra(px, py, mesh.cell_size(), &plan, team);
        NewellDemag {
            nx,
            ny,
            px,
            py,
            ms: material.saturation_magnetization(),
            mask: mesh.mask().to_vec(),
            spectra,
            plan,
            min_cells_per_thread: min,
        }
    }

    /// Worker blocks a convolution pass touching `cells` may fan out to
    /// under the clamp.
    fn pass_blocks(&self, cells: usize, team: &WorkerTeam) -> usize {
        effective_threads(team.threads(), cells, self.min_cells_per_thread)
    }

    /// Padded transform dimensions `(px, py)` this instance convolves on.
    pub fn padded_dims(&self) -> (usize, usize) {
        (self.px, self.py)
    }

    /// Self-demagnetization factors `(Nxx, Nyy, Nzz)` of a single cell —
    /// they must sum to 1.
    pub fn self_factors(dx: f64, dy: f64, dz: f64) -> (f64, f64, f64) {
        (
            newell_nxx(0.0, 0.0, 0.0, dx, dy, dz),
            newell_nxx(0.0, 0.0, 0.0, dy, dx, dz),
            newell_nxx(0.0, 0.0, 0.0, dz, dy, dx),
        )
    }

    /// Runs one convolution on AoS buffers: load `Ms·m` into the padded
    /// grids, transform, multiply by the real kernel spectra, transform
    /// back, add the field into `h`. Per-bin arithmetic is independent of
    /// the team partition.
    fn convolve(&self, m: &[Vec3], h: &mut [Vec3], team: &WorkerTeam, s: &mut DemagScratch) {
        let (nx, ny, px) = (self.nx, self.ny, self.px);
        let ms = self.ms;
        let mask = &self.mask;
        // Zero-fill and load in one parallel pass over padded rows.
        {
            let xy = SendPtr::new(s.xy.as_mut_ptr());
            let z = SendPtr::new(s.z.as_mut_ptr());
            let nb = self.pass_blocks(px * self.py, team);
            team.for_each_span_capped(self.py, nb, |r0, r1| {
                for iy in r0..r1 {
                    let row = iy * px;
                    for jx in 0..px {
                        // Safety: padded rows are disjoint across spans.
                        unsafe {
                            *xy.add(row + jx) = Complex64::ZERO;
                            *z.add(row + jx) = Complex64::ZERO;
                        }
                    }
                    if iy >= ny {
                        continue;
                    }
                    for ix in 0..nx {
                        let i = iy * nx + ix;
                        if !mask[i] {
                            continue;
                        }
                        unsafe {
                            *xy.add(row + ix) = Complex64::new(ms * m[i].x, ms * m[i].y);
                            *z.add(row + ix) = Complex64::new(ms * m[i].z, 0.0);
                        }
                    }
                }
            });
        }
        self.transform_multiply(s, team);
        // Unload: hx/hy come out of the packed grid's re/im channels.
        {
            let xy = &s.xy;
            let z = &s.z;
            let out = SendPtr::new(h.as_mut_ptr());
            let nb = self.pass_blocks(nx * ny, team);
            team.for_each_span_capped(ny, nb, |r0, r1| {
                for iy in r0..r1 {
                    for ix in 0..nx {
                        let i = iy * nx + ix;
                        if !mask[i] {
                            continue;
                        }
                        let p = iy * px + ix;
                        // Safety: mesh rows are disjoint across spans.
                        unsafe {
                            *out.add(i) += Vec3::new(xy[p].re, xy[p].im, z[p].re);
                        }
                    }
                }
            });
        }
    }

    /// SoA variant of [`NewellDemag::convolve`]: the load pass packs the
    /// padded grids straight from the `mx`/`my`/`mz` planes (no gather
    /// into `Vec3`s), and the unload streams the inverse transform back
    /// into the field planes. The per-cell arithmetic — and therefore the
    /// result, bitwise — is identical to the AoS path: the layouts differ
    /// only by a permutation of the same `f64` values.
    fn convolve_planes(&self, m: &Field3, h: &mut Field3, team: &WorkerTeam, s: &mut DemagScratch) {
        let (nx, ny, px) = (self.nx, self.ny, self.px);
        let ms = self.ms;
        let mask = &self.mask;
        let (mx, my, mz) = (m.xs(), m.ys(), m.zs());
        {
            let xy = SendPtr::new(s.xy.as_mut_ptr());
            let z = SendPtr::new(s.z.as_mut_ptr());
            let nb = self.pass_blocks(px * self.py, team);
            team.for_each_span_capped(self.py, nb, |r0, r1| {
                for iy in r0..r1 {
                    let row = iy * px;
                    for jx in 0..px {
                        // Safety: padded rows are disjoint across spans.
                        unsafe {
                            *xy.add(row + jx) = Complex64::ZERO;
                            *z.add(row + jx) = Complex64::ZERO;
                        }
                    }
                    if iy >= ny {
                        continue;
                    }
                    for ix in 0..nx {
                        let i = iy * nx + ix;
                        if !mask[i] {
                            continue;
                        }
                        unsafe {
                            *xy.add(row + ix) = Complex64::new(ms * mx[i], ms * my[i]);
                            *z.add(row + ix) = Complex64::new(ms * mz[i], 0.0);
                        }
                    }
                }
            });
        }
        self.transform_multiply(s, team);
        {
            let xy = &s.xy;
            let z = &s.z;
            let out = h.ptrs();
            let nb = self.pass_blocks(nx * ny, team);
            team.for_each_span_capped(ny, nb, |r0, r1| {
                for iy in r0..r1 {
                    for ix in 0..nx {
                        let i = iy * nx + ix;
                        if !mask[i] {
                            continue;
                        }
                        let p = iy * px + ix;
                        // Safety: mesh rows are disjoint across spans.
                        unsafe {
                            let hv = out.read(i);
                            out.write(i, hv + Vec3::new(xy[p].re, xy[p].im, z[p].re));
                        }
                    }
                }
            });
        }
    }

    /// The layout-independent middle of a convolution: each channel runs
    /// forward to the x-major spectrum (skipping the all-zero rows
    /// `ny..py`), multiplies by its kernel there, and comes back through
    /// the truncated inverse (materializing only the rows the unload
    /// reads). The channels are independent, so routing both through the
    /// single `spec` plane sequentially changes no arithmetic — it
    /// trades a third padded plane for nothing.
    fn transform_multiply(&self, s: &mut DemagScratch, team: &WorkerTeam) {
        let ny = self.ny;
        s.fft.ensure(&self.plan, team.threads());
        self.plan
            .forward_spectrum(&mut s.z, &mut s.spec, team, &mut s.fft, ny);
        self.scale_z_spectrum(&mut s.spec, team);
        self.plan
            .inverse_spectrum(&mut s.spec, &mut s.z, team, &mut s.fft, ny);
        self.plan
            .forward_spectrum(&mut s.xy, &mut s.spec, team, &mut s.fft, ny);
        self.multiply_xy_spectrum(&mut s.spec, team);
        self.plan
            .inverse_spectrum(&mut s.spec, &mut s.xy, team, &mut s.fft, ny);
    }

    /// Applies Ĥz = K̂zz·M̂z in place: a plain real scaling per bin,
    /// independent of bin order — the kernel is stored in the same
    /// x-major layout as the spectrum.
    fn scale_z_spectrum(&self, z: &mut [Complex64], team: &WorkerTeam) {
        let kzz = &self.spectra.kzz;
        let zp = SendPtr::new(z.as_mut_ptr());
        let nb = self.pass_blocks(self.px * self.py, team);
        team.for_each_span_capped(self.px * self.py, nb, |i0, i1| {
            for (i, &k) in kzz.iter().enumerate().take(i1).skip(i0) {
                // Safety: bin ranges are disjoint across spans.
                unsafe { *zp.add(i) = (*zp.add(i)).scale(k) };
            }
        });
    }

    /// Applies the in-plane kernel block to the packed `xy` spectrum in
    /// place. Each conjugate pair `(k, −k)` holds enough information to
    /// unpack the two real spectra `M̂x/M̂y`, multiply by the (real)
    /// kernels at both bins, and repack `Ĥx + i·Ĥy`. In the x-major
    /// layout pairs are grouped by *line*: each parallel task owns the
    /// disjoint line set `{kx, (px−kx) mod px}` (contiguous memory).
    ///
    /// The first/second argument roles passed to `multiply_pair` follow
    /// the ky-major order of the original row-major pipeline — the two
    /// computations differ only by conjugation, which is not bitwise
    /// neutral at signed zeros, so preserving the roles keeps the fields
    /// (and the pinned golden trajectories) bit-for-bit unchanged.
    fn multiply_xy_spectrum(&self, xy: &mut [Complex64], team: &WorkerTeam) {
        let (px, py) = (self.px, self.py);
        let xyp = SendPtr::new(xy.as_mut_ptr());
        let nb = self.pass_blocks(px * py, team);
        team.for_each_span_capped(px / 2 + 1, nb, |t0, t1| {
            for kx in t0..t1 {
                let kx2 = (px - kx) % px;
                if kx2 != kx {
                    // Every pair has exactly one bin on line kx; iterating
                    // ky over the full line covers both lines exactly once.
                    for ky in 0..py {
                        let b = kx * py + ky;
                        let p = kx2 * py + (py - ky) % py;
                        // Row-major order visited self-paired ky rows by
                        // ascending kx and other rows by ascending ky, so
                        // the bin with 2·kx ≤ px (true for all of line kx
                        // here) resp. 2·ky < py came first.
                        let b_first = ky == 0 || 2 * ky <= py;
                        // Safety: this task owns lines kx and kx2.
                        unsafe {
                            if b_first {
                                self.multiply_pair(xyp, b, p);
                            } else {
                                self.multiply_pair(xyp, p, b);
                            }
                        }
                    }
                } else {
                    // Self-inverse line (kx = 0 or px/2): pairs live within
                    // the line; the half-range covers it without repeats,
                    // and the ky ≤ py/2 bin is the row-major-first one.
                    for ky in 0..=py / 2 {
                        let b = kx * py + ky;
                        let p = kx * py + (py - ky) % py;
                        // Safety: this task owns line kx.
                        unsafe { self.multiply_pair(xyp, b, p) };
                    }
                }
            }
        });
    }

    /// Processes one conjugate pair of packed-spectrum bins (writing only
    /// `i1` when the bin is its own partner).
    ///
    /// With `Z = M̂x + i·M̂y` and real fields, `M̂x(k) = (Z(k) + Z̄(−k))/2`
    /// and `M̂y(k) = −i·(Z(k) − Z̄(−k))/2`; at `−k` both spectra are the
    /// conjugates. After the kernel multiply the result is repacked as
    /// `Ĥx + i·Ĥy`, whose inverse transform carries `hx`/`hy` in its
    /// re/im channels.
    ///
    /// # Safety
    ///
    /// `i1`/`i2` must be in bounds and owned exclusively by the caller.
    unsafe fn multiply_pair(&self, xyp: SendPtr<Complex64>, i1: usize, i2: usize) {
        let k = &*self.spectra;
        let z1 = *xyp.add(i1);
        let z2 = *xyp.add(i2);
        let mx = Complex64::new(0.5 * (z1.re + z2.re), 0.5 * (z1.im - z2.im));
        let my = Complex64::new(0.5 * (z1.im + z2.im), 0.5 * (z2.re - z1.re));
        let hx = mx.scale(k.kxx[i1]) + my.scale(k.kxy[i1]);
        let hy = mx.scale(k.kxy[i1]) + my.scale(k.kyy[i1]);
        *xyp.add(i1) = Complex64::new(hx.re - hy.im, hx.im + hy.re);
        if i2 != i1 {
            let mxc = mx.conj();
            let myc = my.conj();
            let hx = mxc.scale(k.kxx[i2]) + myc.scale(k.kxy[i2]);
            let hy = mxc.scale(k.kxy[i2]) + myc.scale(k.kyy[i2]);
            *xyp.add(i2) = Complex64::new(hx.re - hy.im, hx.im + hy.re);
        }
    }
}

/// Builds the four Newell kernel spectra (still complex, for
/// introspection): real-space K = −N over the padded grid with wrap
/// offsets, `Kxy` Nyquist lines zeroed (see module docs), then the
/// forward 2-D transform of each, returned in the **x-major spectrum
/// layout** of [`Fft2Plan::forward_spectrum`] (bin `(kx, ky)` at
/// `kx·py + ky`) so the spectral multiply indexes kernels and spectrum
/// identically. Order: `[Kxx, Kyy, Kzz, Kxy]`.
fn kernel_spectra(
    px: usize,
    py: usize,
    [dx, dy, dz]: [f64; 3],
    plan: &Fft2Plan,
    team: &WorkerTeam,
) -> [Vec<Complex64>; 4] {
    let mut kernels: [Vec<Complex64>; 4] = std::array::from_fn(|_| vec![Complex64::ZERO; px * py]);
    {
        let ptrs: [SendPtr<Complex64>; 4] =
            std::array::from_fn(|i| SendPtr::new(kernels[i].as_mut_ptr()));
        team.for_each_span(py, |r0, r1| {
            for jy in r0..r1 {
                // Wrap offsets: indices beyond the half-grid represent
                // negative displacements. Kernel values are evaluated at
                // the canonical |offset| (the tensor components are even
                // or odd per axis), so mirror entries are bitwise equal —
                // the per-axis symmetry must be exact, not just to
                // rounding, for the spectra to be purely real.
                let oy = if jy <= py / 2 {
                    jy as isize
                } else {
                    jy as isize - py as isize
                };
                let y = oy.unsigned_abs() as f64 * dy;
                for jx in 0..px {
                    let ox = if jx <= px / 2 {
                        jx as isize
                    } else {
                        jx as isize - px as isize
                    };
                    let x = ox.unsigned_abs() as f64 * dx;
                    let idx = jy * px + jx;
                    // K = −N so that the convolution yields H directly.
                    let values = [
                        -newell_nxx(x, y, 0.0, dx, dy, dz),
                        -newell_nxx(y, x, 0.0, dy, dx, dz),
                        -newell_nxx(0.0, y, x, dz, dy, dx),
                        if ox == 0 || oy == 0 || 2 * jx == px || 2 * jy == py {
                            // Kxy is odd per axis: it vanishes identically
                            // on the axes, and at even padded sizes the
                            // Nyquist lines 2j = p (odd across a
                            // self-inverse coordinate, never reaching the
                            // physical output region) are zeroed to keep
                            // the spectrum exactly real. `2j == p` rather
                            // than `j == p/2`: at odd sizes the rounded
                            // half-index is an ordinary mirrored column
                            // and must keep its kernel value.
                            0.0
                        } else {
                            let sign = (ox.signum() * oy.signum()) as f64;
                            -sign * newell_nxy(x, y, 0.0, dx, dy, dz)
                        },
                    ];
                    for (p, v) in ptrs.iter().zip(values) {
                        // Safety: rows are disjoint across spans.
                        unsafe { *p.add(idx) = Complex64::new(v, 0.0) };
                    }
                }
            }
        });
    }
    let mut spec = vec![Complex64::ZERO; px * py];
    let mut rs = Fft2Scratch::new();
    for k in kernels.iter_mut() {
        // All py rows carry kernel data (no zero padding to skip); the
        // spectrum lands in `spec`, which then swaps into the slot.
        plan.forward_spectrum(k, &mut spec, team, &mut rs, py);
        std::mem::swap(k, &mut spec);
    }
    kernels
}

impl std::fmt::Debug for NewellDemag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NewellDemag")
            .field("nx", &self.nx)
            .field("ny", &self.ny)
            .field("padded", &(self.px, self.py))
            .field("ms", &self.ms)
            .finish()
    }
}

impl FieldTerm for NewellDemag {
    fn name(&self) -> &'static str {
        "demag_newell_fft"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        // Cold reference path (tests, effective_field probes): allocate
        // per call instead of sharing a locked buffer — keeps the term
        // free of interior mutability. Energy accounting goes through
        // `accumulate_par` with the system-owned scratch instead.
        let mut scratch = DemagScratch::new(self.px * self.py);
        self.convolve(m, h, &WorkerTeam::new(1), &mut scratch);
    }

    fn make_scratch(&self) -> Option<Box<dyn Any + Send + Sync>> {
        Some(Box::new(DemagScratch::new(self.px * self.py)))
    }

    fn accumulate_par(
        &self,
        m: &Field3,
        _t: f64,
        h: &mut Field3,
        team: &WorkerTeam,
        scratch: Option<&mut (dyn Any + Send + Sync)>,
    ) {
        match scratch.and_then(|s| s.downcast_mut::<DemagScratch>()) {
            Some(s) => self.convolve_planes(m, h, team, s),
            None => {
                // No caller-provided scratch: allocate one for this call
                // but stay on the planar path — no AoS round trip. Hot
                // paths always pass the system-owned scratch.
                let mut s = DemagScratch::new(self.px * self.py);
                self.convolve_planes(m, h, team, &mut s);
            }
        }
    }
}

/// Newell `f` auxiliary function (even in every argument).
fn newell_f(x: f64, y: f64, z: f64) -> f64 {
    let (x, y, z) = (x.abs(), y.abs(), z.abs());
    let r = (x * x + y * y + z * z).sqrt();
    let mut acc = 0.0;
    // (y/2)(z²−x²)·asinh(y/√(x²+z²))
    let dxz = (x * x + z * z).sqrt();
    if dxz > 0.0 && y != 0.0 {
        acc += 0.5 * y * (z * z - x * x) * (y / dxz).asinh();
    }
    // (z/2)(y²−x²)·asinh(z/√(x²+y²))
    let dxy = (x * x + y * y).sqrt();
    if dxy > 0.0 && z != 0.0 {
        acc += 0.5 * z * (y * y - x * x) * (z / dxy).asinh();
    }
    // −xyz·atan(yz/(xR))
    if x != 0.0 && r > 0.0 && y != 0.0 && z != 0.0 {
        acc -= x * y * z * (y * z / (x * r)).atan();
    }
    // (1/6)(2x²−y²−z²)·R
    acc += (2.0 * x * x - y * y - z * z) * r / 6.0;
    acc
}

/// Newell `g` auxiliary function (odd in x and y, even in z).
fn newell_g(x: f64, y: f64, z: f64) -> f64 {
    let zs = z.abs();
    let r = (x * x + y * y + zs * zs).sqrt();
    let mut acc = 0.0;
    let dxy = (x * x + y * y).sqrt();
    if dxy > 0.0 && zs != 0.0 {
        acc += x * y * zs * (zs / dxy).asinh();
    }
    let dyz = (y * y + zs * zs).sqrt();
    if dyz > 0.0 && x != 0.0 {
        acc += y / 6.0 * (3.0 * zs * zs - y * y) * (x / dyz).asinh();
    }
    let dxz = (x * x + zs * zs).sqrt();
    if dxz > 0.0 && y != 0.0 {
        acc += x / 6.0 * (3.0 * zs * zs - x * x) * (y / dxz).asinh();
    }
    if zs != 0.0 && r > 0.0 && x != 0.0 && y != 0.0 {
        acc -= zs * zs * zs / 6.0 * (x * y / (zs * r)).atan();
    }
    if y != 0.0 && r > 0.0 && x != 0.0 && zs != 0.0 {
        acc -= zs * y * y / 2.0 * (x * zs / (y * r)).atan();
    }
    if x != 0.0 && r > 0.0 && y != 0.0 && zs != 0.0 {
        acc -= zs * x * x / 2.0 * (y * zs / (x * r)).atan();
    }
    acc -= x * y * r / 3.0;
    acc
}

/// Applies the 27-point second-difference stencil to an auxiliary function.
fn newell_stencil<F: Fn(f64, f64, f64) -> f64>(
    x: f64,
    y: f64,
    z: f64,
    dx: f64,
    dy: f64,
    dz: f64,
    func: F,
) -> f64 {
    const W: [(isize, f64); 3] = [(-1, -1.0), (0, 2.0), (1, -1.0)];
    let mut acc = 0.0;
    for &(u, wu) in &W {
        for &(v, wv) in &W {
            for &(w, ww) in &W {
                acc += wu * wv * ww * func(x + u as f64 * dx, y + v as f64 * dy, z + w as f64 * dz);
            }
        }
    }
    acc
}

/// Demag tensor component `Nxx` between two cells displaced by `(x, y, z)`.
///
/// `Nxx` is even in every displacement component. Evaluating the stencil
/// at the canonical absolute offsets makes that symmetry hold **bitwise**:
/// the summation order — and with it the cancellation noise of the
/// second-difference stencil, which grows with distance — is identical at
/// `±x`, so kernel tables built from signed and from absolute offsets
/// agree exactly.
pub fn newell_nxx(x: f64, y: f64, z: f64, dx: f64, dy: f64, dz: f64) -> f64 {
    let (x, y, z) = (x.abs(), y.abs(), z.abs());
    newell_stencil(x, y, z, dx, dy, dz, newell_f) / (4.0 * std::f64::consts::PI * dx * dy * dz)
}

/// Demag tensor component `Nxy` between two cells displaced by `(x, y, z)`.
///
/// `Nxy` is odd in `x` and `y` and even in `z`; the stencil runs on the
/// canonical absolute offsets with the sign restored afterwards, so the
/// antisymmetry is bitwise exact and the component vanishes identically
/// on the coordinate planes (where the raw stencil would only cancel to
/// rounding noise).
pub fn newell_nxy(x: f64, y: f64, z: f64, dx: f64, dy: f64, dz: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        return 0.0;
    }
    let sign = x.signum() * y.signum();
    sign * newell_stencil(x.abs(), y.abs(), z.abs(), dx, dy, dz, newell_g)
        / (4.0 * std::f64::consts::PI * dx * dy * dz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_self_factors_are_one_third() {
        let (nxx, nyy, nzz) = NewellDemag::self_factors(1e-9, 1e-9, 1e-9);
        assert!((nxx - 1.0 / 3.0).abs() < 1e-9, "Nxx = {nxx}");
        assert!((nyy - 1.0 / 3.0).abs() < 1e-9);
        assert!((nzz - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn self_factors_sum_to_one_for_any_aspect() {
        for (dx, dy, dz) in [
            (1e-9, 1e-9, 1e-9),
            (5e-9, 5e-9, 1e-9),
            (2e-9, 8e-9, 1e-9),
            (10e-9, 3e-9, 0.5e-9),
        ] {
            let (nxx, nyy, nzz) = NewellDemag::self_factors(dx, dy, dz);
            assert!(
                (nxx + nyy + nzz - 1.0).abs() < 1e-8,
                "trace violated for ({dx}, {dy}, {dz}): {}",
                nxx + nyy + nzz
            );
        }
    }

    #[test]
    fn flat_cell_is_dominated_by_nzz() {
        let (nxx, nyy, nzz) = NewellDemag::self_factors(10e-9, 10e-9, 1e-9);
        assert!(nzz > 0.8, "flat cell Nzz = {nzz}");
        assert!(nxx < 0.1 && nyy < 0.1);
        assert!((nxx - nyy).abs() < 1e-12, "square cell must be symmetric");
    }

    #[test]
    fn nxy_vanishes_on_axes() {
        // Nxy is odd in x and y: it must vanish when either offset is 0.
        assert!(newell_nxy(0.0, 0.0, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
        assert!(newell_nxy(2e-9, 0.0, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
        assert!(newell_nxy(0.0, 2e-9, 0.0, 1e-9, 1e-9, 1e-9).abs() < 1e-12);
    }

    #[test]
    fn nxy_is_odd_under_axis_flip() {
        let a = newell_nxy(2e-9, 3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        let b = newell_nxy(-2e-9, 3e-9, 0.0, 1e-9, 1e-9, 1e-9);
        assert!((a + b).abs() < 1e-15);
        assert!(a.abs() > 0.0, "off-axis Nxy should be non-zero");
    }

    fn film_setup(nx: usize, ny: usize) -> (Mesh, Material) {
        let mesh = Mesh::new(nx, ny, [5e-9, 5e-9, 1e-9]).unwrap();
        (mesh, Material::fecob())
    }

    #[test]
    fn spectral_kernels_have_vanishing_imaginary_parts() {
        // The real-storage conversion relies on the four spectra being
        // exactly real (up to FFT rounding). Check on a non-square grid so
        // both Nyquist lines are exercised.
        let (mesh, _) = film_setup(12, 5);
        let px = next_power_of_two(2 * mesh.nx());
        let py = next_power_of_two(2 * mesh.ny());
        let plan = Fft2Plan::new(px, py);
        let spectra = kernel_spectra(px, py, mesh.cell_size(), &plan, &WorkerTeam::new(1));
        for (name, k) in ["Kxx", "Kyy", "Kzz", "Kxy"].iter().zip(&spectra) {
            let max_re = k.iter().map(|z| z.re.abs()).fold(0.0, f64::max);
            let max_im = k.iter().map(|z| z.im.abs()).fold(0.0, f64::max);
            assert!(
                max_im <= 1e-12 * max_re,
                "{name} spectrum is not real: max |Im| = {max_im:e}, max |Re| = {max_re:e}"
            );
        }
    }

    #[test]
    fn parallel_kernel_build_is_bitwise_identical() {
        // The cache hands every construction the spectra built first, so
        // team-invariance of the build is checked on `kernel_spectra`
        // directly — through `NewellDemag::new_with_team` the comparison
        // would be vacuous.
        let (mesh, _) = film_setup(9, 6);
        let px = next_power_of_two(2 * mesh.nx());
        let py = next_power_of_two(2 * mesh.ny());
        let plan = Fft2Plan::new(px, py);
        let serial = kernel_spectra(px, py, mesh.cell_size(), &plan, &WorkerTeam::new(1));
        for threads in [2, 4, 7] {
            let team = WorkerTeam::new(threads);
            let par = kernel_spectra(px, py, mesh.cell_size(), &plan, &team);
            for (name, (s, p)) in ["Kxx", "Kyy", "Kzz", "Kxy"]
                .iter()
                .zip(serial.iter().zip(&par))
            {
                assert_eq!(s, p, "{name} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn spectra_are_shared_through_the_cache() {
        let (mesh, mat) = film_setup(10, 4);
        let a = NewellDemag::new(&mesh, &mat);
        let b = NewellDemag::new_with_team(&mesh, &mat, &WorkerTeam::new(3));
        assert!(
            Arc::ptr_eq(&a.spectra, &b.spectra),
            "same geometry must share one kernel table"
        );
        // A different padded grid gets its own entry.
        let (other, _) = film_setup(20, 4);
        let c = NewellDemag::new(&other, &mat);
        assert!(!Arc::ptr_eq(&a.spectra, &c.spectra));
    }

    #[test]
    fn padding_policies_use_distinct_cache_entries_and_agree() {
        // Same mesh, two padding policies: the padded grids differ
        // (40×8 vs 64×16 here), so the cache must hand out two distinct
        // kernel tables — a collision would apply a 64-point spectrum to
        // a 40-point grid. The physical fields still agree to rounding.
        let (mesh, mat) = film_setup(20, 5);
        let good = NewellDemag::with_padding(&mesh, &mat, &WorkerTeam::new(1), PadPolicy::GoodSize);
        let pow2 =
            NewellDemag::with_padding(&mesh, &mat, &WorkerTeam::new(1), PadPolicy::PowerOfTwo);
        assert_ne!(good.padded_dims(), pow2.padded_dims());
        assert_eq!(pow2.padded_dims(), (64, 16));
        assert!(
            !Arc::ptr_eq(&good.spectra, &pow2.spectra),
            "different padded grids must not share a cache entry"
        );
        let n = mesh.cell_count();
        let m: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((0.4 * i as f64).sin(), 0.3, (0.2 * i as f64).cos()).normalized())
            .collect();
        let ms = mat.saturation_magnetization();
        let mut ha = vec![Vec3::ZERO; n];
        let mut hb = vec![Vec3::ZERO; n];
        good.accumulate(&m, 0.0, &mut ha);
        pow2.accumulate(&m, 0.0, &mut hb);
        for i in 0..n {
            let err = (ha[i] - hb[i]).norm() / ms;
            assert!(err < 1e-12, "cell {i}: policies diverged by {err:e}");
        }
    }

    #[test]
    fn odd_padded_grid_matches_direct_newell_sum() {
        // An 8×8 mesh pads to 15×15 under good_size (2·8−1 = 15 = 3·5):
        // both axes odd, exercising the wrap offsets, the `2j == p`
        // Nyquist guard (no line may be zeroed at odd sizes) and the
        // conjugate-pair spectral multiply away from powers of two.
        let (mesh, mat) = film_setup(8, 8);
        let demag = NewellDemag::new(&mesh, &mat);
        assert_eq!(demag.padded_dims(), (15, 15), "expected odd padding");
        let n = mesh.cell_count();
        let ms = mat.saturation_magnetization();
        let [dx, dy, dz] = mesh.cell_size();
        let m: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.3, (0.5 * i as f64).sin(), 0.7 + 0.01 * i as f64).normalized())
            .collect();
        let mut fft_field = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut fft_field);
        for iy in 0..mesh.ny() {
            for ix in 0..mesh.nx() {
                let i = iy * mesh.nx() + ix;
                let mut direct = Vec3::ZERO;
                for jy in 0..mesh.ny() {
                    for jx in 0..mesh.nx() {
                        let j = jy * mesh.nx() + jx;
                        let x = (ix as isize - jx as isize) as f64 * dx;
                        let y = (iy as isize - jy as isize) as f64 * dy;
                        let nxx = newell_nxx(x, y, 0.0, dx, dy, dz);
                        let nyy = newell_nxx(y, x, 0.0, dy, dx, dz);
                        let nzz = newell_nxx(0.0, y, x, dz, dy, dx);
                        let nxy = newell_nxy(x, y, 0.0, dx, dy, dz);
                        let mj = m[j] * ms;
                        direct += Vec3::new(
                            -(nxx * mj.x + nxy * mj.y),
                            -(nxy * mj.x + nyy * mj.y),
                            -nzz * mj.z,
                        );
                    }
                }
                let err = (fft_field[i] - direct).norm() / ms;
                assert!(
                    err < 1e-12,
                    "cell ({ix},{iy}): FFT {:?} vs direct {direct:?} (err {err:e})",
                    fft_field[i]
                );
            }
        }
    }

    #[test]
    fn exact_padding_matches_direct_newell_sum_through_bluestein() {
        // PadPolicy::Exact pads 6×3 to 11×5 — 11 is prime, so the row
        // axis runs the Bluestein fallback inside a real convolution.
        // The field must still reproduce the direct O(N²) tensor sum.
        let (mesh, mat) = film_setup(6, 3);
        let demag = NewellDemag::with_padding(&mesh, &mat, &WorkerTeam::new(1), PadPolicy::Exact);
        assert_eq!(demag.padded_dims(), (11, 5));
        let n = mesh.cell_count();
        let ms = mat.saturation_magnetization();
        let [dx, dy, dz] = mesh.cell_size();
        let m: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.5 * (i as f64).cos(), 0.4, 0.8 + 0.02 * i as f64).normalized())
            .collect();
        let mut fft_field = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut fft_field);
        for iy in 0..mesh.ny() {
            for ix in 0..mesh.nx() {
                let i = iy * mesh.nx() + ix;
                let mut direct = Vec3::ZERO;
                for jy in 0..mesh.ny() {
                    for jx in 0..mesh.nx() {
                        let j = jy * mesh.nx() + jx;
                        let x = (ix as isize - jx as isize) as f64 * dx;
                        let y = (iy as isize - jy as isize) as f64 * dy;
                        let nxx = newell_nxx(x, y, 0.0, dx, dy, dz);
                        let nyy = newell_nxx(y, x, 0.0, dy, dx, dz);
                        let nzz = newell_nxx(0.0, y, x, dz, dy, dx);
                        let nxy = newell_nxy(x, y, 0.0, dx, dy, dz);
                        let mj = m[j] * ms;
                        direct += Vec3::new(
                            -(nxx * mj.x + nxy * mj.y),
                            -(nxy * mj.x + nyy * mj.y),
                            -nzz * mj.z,
                        );
                    }
                }
                let err = (fft_field[i] - direct).norm() / ms;
                assert!(
                    err < 1e-11,
                    "cell ({ix},{iy}): exact-padded FFT {:?} vs direct {direct:?} (err {err:e})",
                    fft_field[i]
                );
            }
        }
    }

    #[test]
    fn odd_padded_spectra_are_real() {
        // The purely-real-spectrum property must survive odd padded
        // sizes: 8×5 pads to 15×9.
        let (mesh, _) = film_setup(8, 5);
        let px = PadPolicy::GoodSize.pad(mesh.nx());
        let py = PadPolicy::GoodSize.pad(mesh.ny());
        assert_eq!((px, py), (15, 9));
        let plan = Fft2Plan::new(px, py);
        let spectra = kernel_spectra(px, py, mesh.cell_size(), &plan, &WorkerTeam::new(1));
        for (name, k) in ["Kxx", "Kyy", "Kzz", "Kxy"].iter().zip(&spectra) {
            let max_re = k.iter().map(|z| z.re.abs()).fold(0.0, f64::max);
            let max_im = k.iter().map(|z| z.im.abs()).fold(0.0, f64::max);
            assert!(
                max_im <= 1e-12 * max_re,
                "{name} spectrum is not real at odd padding: \
                 max |Im| = {max_im:e}, max |Re| = {max_re:e}"
            );
        }
    }

    #[test]
    fn parallel_field_is_bitwise_identical_to_fallback() {
        let (mut mesh, mat) = film_setup(11, 7);
        mesh.set_magnetic(4, 3, false);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let m: Vec<Vec3> = (0..n)
            .map(|i| {
                if mesh.mask()[i] {
                    Vec3::new(
                        (0.3 * i as f64).sin(),
                        (0.7 * i as f64).cos(),
                        1.0 - 0.01 * i as f64,
                    )
                    .normalized()
                } else {
                    Vec3::ZERO
                }
            })
            .collect();
        let mut reference = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut reference);
        let mf = Field3::from_vec3s(&m);
        for threads in [1, 2, 4, 7] {
            let team = WorkerTeam::new(threads);
            let mut scratch = demag.make_scratch().expect("demag needs scratch");
            let mut h = Field3::zeros(n);
            demag.accumulate_par(&mf, 0.0, &mut h, &team, Some(scratch.as_mut()));
            assert_eq!(
                h.to_vec(),
                reference,
                "demag field diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn convolution_matches_direct_newell_sum() {
        // Small grid: the FFT convolution must reproduce the O(N²) direct
        // tensor sum h_i = Σ_j K(r_i − r_j)·Ms·m_j to rounding accuracy.
        let (mesh, mat) = film_setup(6, 3);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let ms = mat.saturation_magnetization();
        let [dx, dy, dz] = mesh.cell_size();
        let m: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.5 * (i as f64).cos(), 0.4, 0.8 + 0.02 * i as f64).normalized())
            .collect();
        let mut fft_field = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut fft_field);
        for iy in 0..mesh.ny() {
            for ix in 0..mesh.nx() {
                let i = iy * mesh.nx() + ix;
                let mut direct = Vec3::ZERO;
                for jy in 0..mesh.ny() {
                    for jx in 0..mesh.nx() {
                        let j = jy * mesh.nx() + jx;
                        let x = (ix as isize - jx as isize) as f64 * dx;
                        let y = (iy as isize - jy as isize) as f64 * dy;
                        let nxx = newell_nxx(x, y, 0.0, dx, dy, dz);
                        let nyy = newell_nxx(y, x, 0.0, dy, dx, dz);
                        let nzz = newell_nxx(0.0, y, x, dz, dy, dx);
                        let nxy = newell_nxy(x, y, 0.0, dx, dy, dz);
                        let mj = m[j] * ms;
                        direct += Vec3::new(
                            -(nxx * mj.x + nxy * mj.y),
                            -(nxy * mj.x + nyy * mj.y),
                            -nzz * mj.z,
                        );
                    }
                }
                let err = (fft_field[i] - direct).norm() / ms;
                assert!(
                    err < 1e-12,
                    "cell ({ix},{iy}): FFT {:?} vs direct {direct:?} (err {err:e})",
                    fft_field[i]
                );
            }
        }
    }

    #[test]
    fn newell_field_of_flat_film_approaches_local_limit() {
        // A uniformly out-of-plane magnetized wide thin film: at the centre
        // H_z → −Ms, the thin-film local value.
        let (mesh, mat) = film_setup(32, 32);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let m = vec![Vec3::Z; n];
        let mut h = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut h);
        let centre = mesh.linear_index(16, 16);
        let hz = h[centre].z;
        let ms = mat.saturation_magnetization();
        assert!(
            (hz + ms).abs() / ms < 0.15,
            "centre demag field {hz} should be close to -Ms = {}",
            -ms
        );
        // In-plane components vanish by symmetry.
        assert!(h[centre].x.abs() / ms < 1e-6);
        assert!(h[centre].y.abs() / ms < 1e-6);
        // The edge field is weaker (flux closure).
        let edge = mesh.linear_index(0, 16);
        assert!(h[edge].z.abs() < hz.abs());
    }

    #[test]
    fn thin_film_local_term_is_minus_ms_mz() {
        let (mesh, mat) = film_setup(4, 4);
        let demag = ThinFilmDemag::new(&mesh, &mat);
        let m = vec![Vec3::new(0.6, 0.0, 0.8); mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        demag.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert!((hi.z + mat.saturation_magnetization() * 0.8).abs() < 1e-6);
            assert_eq!(hi.x, 0.0);
        }
    }

    #[test]
    fn vacuum_cells_receive_no_demag_field() {
        let (mut mesh, mat) = film_setup(4, 1);
        mesh.set_magnetic(3, 0, false);
        let local = ThinFilmDemag::new(&mesh, &mat);
        let newell = NewellDemag::new(&mesh, &mat);
        let m = vec![Vec3::Z; 4];
        for term in [&local as &dyn FieldTerm, &newell as &dyn FieldTerm] {
            let mut h = vec![Vec3::ZERO; 4];
            term.accumulate(&m, 0.0, &mut h);
            assert_eq!(h[3], Vec3::ZERO, "{} leaked into vacuum", term.name());
        }
    }

    #[test]
    fn in_plane_magnetized_film_has_small_demag_field_inside() {
        // For in-plane magnetization of a thin film the demag field is
        // weak (N∥ ≈ 0) — checks the Nxx path of the convolution.
        let (mesh, mat) = film_setup(32, 32);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let m = vec![Vec3::X; n];
        let mut h = vec![Vec3::ZERO; n];
        demag.accumulate(&m, 0.0, &mut h);
        let centre = mesh.linear_index(16, 16);
        let ms = mat.saturation_magnetization();
        assert!(
            h[centre].x.abs() / ms < 0.1,
            "in-plane demag field should be small: {}",
            h[centre].x / ms
        );
    }

    #[test]
    fn demag_energy_prefers_out_of_plane_for_nothing() {
        // Sanity: out-of-plane uniform state has *higher* demag energy than
        // in-plane for a film (shape anisotropy).
        let (mesh, mat) = film_setup(16, 16);
        let demag = NewellDemag::new(&mesh, &mat);
        let n = mesh.cell_count();
        let ms = mat.saturation_magnetization();
        let v = mesh.cell_volume();
        let e_oop = demag.energy(&vec![Vec3::Z; n], 0.0, ms, v);
        let e_ip = demag.energy(&vec![Vec3::X; n], 0.0, ms, v);
        assert!(e_oop > e_ip, "film shape anisotropy: {e_oop} vs {e_ip}");
    }
}
