//! Brown's stochastic thermal field.
//!
//! Finite temperature enters the LLG equation as a random field with
//! variance `σ_B² = 2·α·k_B·T / (γ·Ms·V_cell·Δt)` (in T², divided by μ₀
//! for A/m), white in time and space. The field is redrawn once per time
//! step and held fixed across the integrator stages (Heun converges to
//! the Stratonovich solution this way).
//!
//! The paper leaves thermal effects to the literature it cites (\[36\],
//! \[43\]) but discusses them in §IV-D; this module is what the `repro
//! thermal` experiment uses to show gate operation survives T > 0.

use crate::material::Material;
use crate::math::{GaussianSource, Vec3};
use crate::mesh::Mesh;
use crate::{KB, MU0};

/// Stochastic thermal field generator (see module docs).
#[derive(Debug)]
pub struct ThermalField {
    temperature: f64,
    /// 2·α·k_B / (γ·Ms·V) — multiplied by T/Δt and square-rooted per draw.
    coeff: f64,
    mask: Vec<bool>,
    normals: GaussianSource,
}

impl ThermalField {
    /// Creates a generator for the given temperature (kelvin) and RNG seed.
    pub fn new(mesh: &Mesh, material: &Material, temperature: f64, seed: u64) -> Self {
        let ms = material.saturation_magnetization();
        let v = mesh.cell_volume();
        let coeff = if ms > 0.0 {
            2.0 * material.gilbert_damping() * KB / (material.gamma() * ms * v)
        } else {
            0.0
        };
        ThermalField {
            temperature: temperature.max(0.0),
            coeff,
            mask: mesh.mask().to_vec(),
            normals: GaussianSource::new(seed),
        }
    }

    /// The configured temperature in kelvin.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Draws a fresh realization of the thermal field (A/m) for a step of
    /// length `dt`, writing it into `out` (vacuum cells get zero).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the mesh cell count.
    pub fn draw(&mut self, dt: f64, out: &mut [Vec3]) {
        assert_eq!(out.len(), self.mask.len(), "thermal buffer size mismatch");
        if self.temperature == 0.0 || self.coeff == 0.0 || dt <= 0.0 {
            out.fill(Vec3::ZERO);
            return;
        }
        // σ in Tesla, converted to A/m.
        let sigma = (self.coeff * self.temperature / dt).sqrt() / MU0;
        for (i, o) in out.iter_mut().enumerate() {
            if self.mask[i] {
                *o = Vec3::new(
                    sigma * self.normals.next_normal(),
                    sigma * self.normals.next_normal(),
                    sigma * self.normals.next_normal(),
                );
            } else {
                *o = Vec3::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mesh, Material) {
        (
            Mesh::new(16, 16, [5e-9, 5e-9, 1e-9]).unwrap(),
            Material::fecob(),
        )
    }

    fn field_variance(t: f64, dt: f64, seed: u64) -> f64 {
        let (mesh, mat) = setup();
        let mut th = ThermalField::new(&mesh, &mat, t, seed);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(dt, &mut buf);
        let n = buf.len() as f64 * 3.0;
        buf.iter().map(|v| v.norm_sq()).sum::<f64>() / n
    }

    #[test]
    fn zero_temperature_gives_zero_field() {
        assert_eq!(field_variance(0.0, 1e-13, 1), 0.0);
    }

    #[test]
    fn variance_scales_linearly_with_temperature() {
        let v300 = field_variance(300.0, 1e-13, 42);
        let v75 = field_variance(75.0, 1e-13, 42);
        let ratio = v300 / v75;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "variance ratio should be ≈4, got {ratio}"
        );
    }

    #[test]
    fn variance_scales_inversely_with_dt() {
        let v1 = field_variance(300.0, 1e-13, 7);
        let v2 = field_variance(300.0, 4e-13, 7);
        let ratio = v1 / v2;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "variance ratio should be ≈4, got {ratio}"
        );
    }

    #[test]
    fn same_seed_reproduces_realization() {
        let (mesh, mat) = setup();
        let mut a = ThermalField::new(&mesh, &mat, 300.0, 9);
        let mut b = ThermalField::new(&mesh, &mat, 300.0, 9);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let (mesh, mat) = setup();
        let mut a = ThermalField::new(&mesh, &mat, 300.0, 1);
        let mut b = ThermalField::new(&mesh, &mat, 300.0, 2);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn mean_is_approximately_zero() {
        let (mesh, mat) = setup();
        let mut th = ThermalField::new(&mesh, &mat, 300.0, 3);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(1e-13, &mut buf);
        let mean: Vec3 = buf.iter().copied().sum::<Vec3>() / buf.len() as f64;
        let sigma =
            (buf.iter().map(|v| v.norm_sq()).sum::<f64>() / (3.0 * buf.len() as f64)).sqrt();
        assert!(mean.norm() < sigma, "mean {mean} too large vs σ = {sigma}");
    }

    #[test]
    fn vacuum_cells_stay_cold() {
        let (mut mesh, mat) = setup();
        mesh.set_magnetic(0, 0, false);
        let mut th = ThermalField::new(&mesh, &mat, 300.0, 5);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(1e-13, &mut buf);
        assert_eq!(buf[0], Vec3::ZERO);
        assert!(buf[1].norm() > 0.0);
    }
}
