//! Brown's stochastic thermal field.
//!
//! Finite temperature enters the LLG equation as a random field with
//! variance `σ_B² = 2·α·k_B·T / (γ·Ms·V_cell·Δt)` (in T², divided by μ₀
//! for A/m), white in time and space. The field is redrawn once per time
//! step and held fixed across the integrator stages (Heun converges to
//! the Stratonovich solution this way).
//!
//! The damping constant `α` in the variance is the *local* one: with an
//! absorbing boundary frame the frame cells run at α ≈ 0.5 while the
//! interior sits at the material's intrinsic damping, and the
//! fluctuation–dissipation theorem requires the noise power to track
//! that spatial profile cell by cell. [`ThermalField::with_damping`]
//! takes the per-cell damping map; [`ThermalField::new`] is the uniform
//! special case.
//!
//! The paper leaves thermal effects to the literature it cites (\[36\],
//! \[43\]) but discusses them in §IV-D; this module is what the `repro
//! thermal` experiment uses to show gate operation survives T > 0.

use crate::material::Material;
use crate::math::{GaussianSource, Vec3};
use crate::mesh::Mesh;
use crate::{KB, MU0};

/// Stochastic thermal field generator (see module docs).
#[derive(Debug)]
pub struct ThermalField {
    temperature: f64,
    /// Per-cell `sqrt(2·α_i·k_B / (γ·Ms·V)) / μ₀` — multiplied by
    /// `sqrt(T/Δt)` at draw time. Zero for vacuum cells.
    sigma_base: Vec<f64>,
    mask: Vec<bool>,
    normals: GaussianSource,
}

impl ThermalField {
    /// Creates a generator with spatially uniform damping taken from the
    /// material, for the given temperature (kelvin) and RNG seed.
    pub fn new(mesh: &Mesh, material: &Material, temperature: f64, seed: u64) -> Self {
        let alpha = vec![material.gilbert_damping(); mesh.cell_count()];
        Self::with_damping(mesh, material, &alpha, temperature, seed)
    }

    /// Creates a generator whose noise power follows the per-cell damping
    /// map `alpha` (fluctuation–dissipation with absorbing frames).
    ///
    /// # Panics
    ///
    /// Panics if `alpha.len()` differs from the mesh cell count.
    pub fn with_damping(
        mesh: &Mesh,
        material: &Material,
        alpha: &[f64],
        temperature: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(alpha.len(), mesh.cell_count(), "damping map size mismatch");
        let ms = material.saturation_magnetization();
        let v = mesh.cell_volume();
        let mask = mesh.mask().to_vec();
        let sigma_base = alpha
            .iter()
            .zip(&mask)
            .map(|(&a, &magnetic)| {
                if magnetic && ms > 0.0 && a > 0.0 {
                    (2.0 * a * KB / (material.gamma() * ms * v)).sqrt() / MU0
                } else {
                    0.0
                }
            })
            .collect();
        ThermalField {
            temperature: temperature.max(0.0),
            sigma_base,
            mask,
            normals: GaussianSource::new(seed),
        }
    }

    /// The configured temperature in kelvin.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Draws a fresh realization of the thermal field (A/m) for a step of
    /// length `dt`, writing it into `out` (vacuum cells get zero).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the mesh cell count.
    pub fn draw(&mut self, dt: f64, out: &mut [Vec3]) {
        assert_eq!(out.len(), self.mask.len(), "thermal buffer size mismatch");
        if self.temperature == 0.0 || dt <= 0.0 {
            out.fill(Vec3::ZERO);
            return;
        }
        let scale = (self.temperature / dt).sqrt();
        for (i, o) in out.iter_mut().enumerate() {
            if self.mask[i] {
                let sigma = self.sigma_base[i] * scale;
                *o = Vec3::new(
                    sigma * self.normals.next_normal(),
                    sigma * self.normals.next_normal(),
                    sigma * self.normals.next_normal(),
                );
            } else {
                *o = Vec3::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mesh, Material) {
        (
            Mesh::new(16, 16, [5e-9, 5e-9, 1e-9]).unwrap(),
            Material::fecob(),
        )
    }

    fn field_variance(t: f64, dt: f64, seed: u64) -> f64 {
        let (mesh, mat) = setup();
        let mut th = ThermalField::new(&mesh, &mat, t, seed);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(dt, &mut buf);
        let n = buf.len() as f64 * 3.0;
        buf.iter().map(|v| v.norm_sq()).sum::<f64>() / n
    }

    #[test]
    fn zero_temperature_gives_zero_field() {
        assert_eq!(field_variance(0.0, 1e-13, 1), 0.0);
    }

    #[test]
    fn variance_scales_linearly_with_temperature() {
        let v300 = field_variance(300.0, 1e-13, 42);
        let v75 = field_variance(75.0, 1e-13, 42);
        let ratio = v300 / v75;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "variance ratio should be ≈4, got {ratio}"
        );
    }

    #[test]
    fn variance_scales_inversely_with_dt() {
        let v1 = field_variance(300.0, 1e-13, 7);
        let v2 = field_variance(300.0, 4e-13, 7);
        let ratio = v1 / v2;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "variance ratio should be ≈4, got {ratio}"
        );
    }

    #[test]
    fn same_seed_reproduces_realization() {
        let (mesh, mat) = setup();
        let mut a = ThermalField::new(&mesh, &mat, 300.0, 9);
        let mut b = ThermalField::new(&mesh, &mat, 300.0, 9);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let (mesh, mat) = setup();
        let mut a = ThermalField::new(&mesh, &mat, 300.0, 1);
        let mut b = ThermalField::new(&mesh, &mat, 300.0, 2);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn mean_is_approximately_zero() {
        let (mesh, mat) = setup();
        let mut th = ThermalField::new(&mesh, &mat, 300.0, 3);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(1e-13, &mut buf);
        let mean: Vec3 = buf.iter().copied().sum::<Vec3>() / buf.len() as f64;
        let sigma =
            (buf.iter().map(|v| v.norm_sq()).sum::<f64>() / (3.0 * buf.len() as f64)).sqrt();
        assert!(mean.norm() < sigma, "mean {mean} too large vs σ = {sigma}");
    }

    #[test]
    fn vacuum_cells_stay_cold() {
        let (mut mesh, mat) = setup();
        mesh.set_magnetic(0, 0, false);
        let mut th = ThermalField::new(&mesh, &mat, 300.0, 5);
        let mut buf = vec![Vec3::ZERO; mesh.cell_count()];
        th.draw(1e-13, &mut buf);
        assert_eq!(buf[0], Vec3::ZERO);
        assert!(buf[1].norm() > 0.0);
    }

    #[test]
    fn uniform_map_matches_legacy_constructor() {
        let (mesh, mat) = setup();
        let alpha = vec![mat.gilbert_damping(); mesh.cell_count()];
        let mut a = ThermalField::new(&mesh, &mat, 300.0, 13);
        let mut b = ThermalField::with_damping(&mesh, &mat, &alpha, 300.0, 13);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn variance_tracks_local_damping() {
        // Fluctuation–dissipation regression: a cell running at 100× the
        // interior damping (an absorbing-frame cell) must draw noise with
        // 100× the variance — i.e. σ ∝ sqrt(α_local), not sqrt(α_bulk).
        let (mesh, mat) = setup();
        let n = mesh.cell_count();
        let a_bulk = mat.gilbert_damping();
        let a_frame = 100.0 * a_bulk;
        let mut alpha = vec![a_bulk; n];
        alpha[0] = a_frame;
        // Many redraws of the same two cells estimate the variances.
        let mut th = ThermalField::with_damping(&mesh, &mat, &alpha, 300.0, 21);
        let mut buf = vec![Vec3::ZERO; n];
        let (mut var_frame, mut var_bulk) = (0.0, 0.0);
        let draws = 400;
        for _ in 0..draws {
            th.draw(1e-13, &mut buf);
            var_frame += buf[0].norm_sq();
            var_bulk += buf[1].norm_sq();
        }
        let ratio = var_frame / var_bulk;
        assert!(
            (ratio - 100.0).abs() < 15.0,
            "frame/bulk variance ratio should be ≈100 (α ratio), got {ratio}"
        );
    }
}
