//! Heisenberg exchange field on the finite-difference mesh.
//!
//! `H_ex = (2A/μ₀Ms) ∇²m`, discretized with the standard 4-neighbour
//! Laplacian. Vacuum cells and mesh edges use Neumann (mirror) boundary
//! conditions: a missing neighbour simply contributes nothing, which is
//! equivalent to reflecting `m` across the boundary.

use super::{FieldTerm, FusedTerm};
use crate::material::Material;
use crate::math::Vec3;
use crate::mesh::Mesh;
use crate::MU0;

/// Exchange field term (see module docs).
#[derive(Debug, Clone)]
pub struct Exchange {
    nx: usize,
    ny: usize,
    /// 2A/(μ₀·Ms·dx²)
    coeff_x: f64,
    /// 2A/(μ₀·Ms·dy²)
    coeff_y: f64,
    mask: Vec<bool>,
}

impl Exchange {
    /// Builds the exchange term for a mesh/material pair.
    ///
    /// A zero `Ms` or zero `Aex` produces a no-op term (coefficients 0).
    pub fn new(mesh: &Mesh, material: &Material) -> Self {
        let ms = material.saturation_magnetization();
        let aex = material.exchange_stiffness();
        let [dx, dy, _] = mesh.cell_size();
        let base = if ms > 0.0 {
            2.0 * aex / (MU0 * ms)
        } else {
            0.0
        };
        Exchange {
            nx: mesh.nx(),
            ny: mesh.ny(),
            coeff_x: base / (dx * dx),
            coeff_y: base / (dy * dy),
            mask: mesh.mask().to_vec(),
        }
    }

    /// The exchange coefficient along x, `2A/(μ₀·Ms·dx²)`, in A/m.
    pub fn coefficient_x(&self) -> f64 {
        self.coeff_x
    }

    /// The exchange coefficient along y, `2A/(μ₀·Ms·dy²)`, in A/m.
    pub fn coefficient_y(&self) -> f64 {
        self.coeff_y
    }
}

impl FieldTerm for Exchange {
    fn name(&self) -> &'static str {
        "exchange"
    }

    fn accumulate(&self, m: &[Vec3], _t: f64, h: &mut [Vec3]) {
        debug_assert_eq!(m.len(), self.nx * self.ny);
        let nx = self.nx;
        let ny = self.ny;
        for iy in 0..ny {
            for ix in 0..nx {
                let i = iy * nx + ix;
                if !self.mask[i] {
                    continue;
                }
                let mi = m[i];
                let mut acc = Vec3::ZERO;
                // Left / right neighbours.
                if ix > 0 && self.mask[i - 1] {
                    acc += (m[i - 1] - mi) * self.coeff_x;
                }
                if ix + 1 < nx && self.mask[i + 1] {
                    acc += (m[i + 1] - mi) * self.coeff_x;
                }
                // Down / up neighbours.
                if iy > 0 && self.mask[i - nx] {
                    acc += (m[i - nx] - mi) * self.coeff_y;
                }
                if iy + 1 < ny && self.mask[i + nx] {
                    acc += (m[i + nx] - mi) * self.coeff_y;
                }
                h[i] += acc;
            }
        }
    }

    fn fused(&self) -> Option<FusedTerm> {
        Some(FusedTerm::Exchange {
            coeff_x: self.coeff_x,
            coeff_y: self.coeff_y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nx: usize, ny: usize) -> (Mesh, Material) {
        let mesh = Mesh::new(nx, ny, [5e-9, 5e-9, 1e-9]).unwrap();
        let material = Material::fecob();
        (mesh, material)
    }

    #[test]
    fn uniform_magnetization_has_zero_exchange_field() {
        let (mesh, mat) = setup(16, 8);
        let ex = Exchange::new(&mesh, &mat);
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.accumulate(&m, 0.0, &mut h);
        for hi in &h {
            assert!(hi.norm() < 1e-12);
        }
    }

    #[test]
    fn tilted_cell_feels_restoring_field() {
        let (mesh, mat) = setup(8, 1);
        let ex = Exchange::new(&mesh, &mat);
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        // Tilt one interior cell towards +x.
        m[4] = Vec3::new(0.5f64.sqrt(), 0.0, 0.5f64.sqrt());
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        ex.accumulate(&m, 0.0, &mut h);
        // The tilted cell's neighbours pull it back to +z: field on cell 4
        // has negative x-component... actually neighbours are +z, so
        // (m_j - m_i) points from the tilted direction towards +z.
        assert!(h[4].x < 0.0, "restoring field should oppose the tilt");
        assert!(h[4].z > 0.0);
        // Neighbours feel a pull towards +x.
        assert!(h[3].x > 0.0);
        assert!(h[5].x > 0.0);
        // Far cells feel nothing.
        assert!(h[0].norm() < 1e-12);
    }

    #[test]
    fn vacuum_cells_are_skipped_and_do_not_couple() {
        let (mut mesh, mat) = setup(3, 1);
        mesh.set_magnetic(1, 0, false); // middle cell is vacuum
        let ex = Exchange::new(&mesh, &mat);
        let mut m = vec![Vec3::Z; 3];
        m[0] = Vec3::X; // would normally torque cell 2 through cell 1
        let mut h = vec![Vec3::ZERO; 3];
        ex.accumulate(&m, 0.0, &mut h);
        assert_eq!(h[1], Vec3::ZERO, "vacuum cell gets no field");
        assert_eq!(h[2], Vec3::ZERO, "coupling must not jump the gap");
    }

    #[test]
    fn coefficient_matches_formula() {
        let (mesh, mat) = setup(4, 4);
        let ex = Exchange::new(&mesh, &mat);
        let expected = 2.0 * 18.5e-12 / (MU0 * 1100e3 * 25e-18);
        assert!((ex.coefficient_x() - expected).abs() / expected < 1e-12);
        assert_eq!(ex.coefficient_x(), ex.coefficient_y());
    }

    #[test]
    fn laplacian_of_linear_profile_vanishes_in_interior() {
        // m rotates linearly in the xz-plane: small-angle Laplacian ≈ 0 in
        // the interior (for small angle steps), boundaries feel an edge
        // torque. Use small angles so linearization holds.
        let (mesh, mat) = setup(16, 1);
        let ex = Exchange::new(&mesh, &mat);
        let m: Vec<Vec3> = (0..16)
            .map(|i| {
                let theta = 1e-4 * i as f64;
                Vec3::new(theta.sin(), 0.0, theta.cos())
            })
            .collect();
        let mut h = vec![Vec3::ZERO; 16];
        ex.accumulate(&m, 0.0, &mut h);
        // Interior cells: x-component nearly zero relative to coefficient.
        let scale = ex.coefficient_x() * 1e-4;
        for (i, hi) in h.iter().enumerate().take(14).skip(2) {
            assert!(
                hi.x.abs() < scale * 1e-4,
                "interior cell {i} has non-vanishing Laplacian: {}",
                hi.x
            );
        }
        // Edge cells are pulled by their single neighbour.
        assert!(h[0].x.abs() > scale * 0.5);
    }

    #[test]
    fn exchange_energy_is_nonnegative_and_zero_for_uniform() {
        let (mesh, mat) = setup(8, 8);
        let ex = Exchange::new(&mesh, &mat);
        let uniform = vec![Vec3::Z; mesh.cell_count()];
        let e_uniform = ex.energy(
            &uniform,
            0.0,
            mat.saturation_magnetization(),
            mesh.cell_volume(),
        );
        assert!(e_uniform.abs() < 1e-30);
        // A checkerboard pattern has large positive exchange energy.
        let checker: Vec<Vec3> = (0..mesh.cell_count())
            .map(|i| if i % 2 == 0 { Vec3::Z } else { -Vec3::Z })
            .collect();
        let e_checker = ex.energy(
            &checker,
            0.0,
            mat.saturation_magnetization(),
            mesh.cell_volume(),
        );
        assert!(e_checker > 0.0);
    }
}
