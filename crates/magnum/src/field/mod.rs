//! Effective-field contributions to the LLG equation.
//!
//! Every physical interaction contributes a term to the effective field
//! `H_eff` of equation (1) in the paper: exchange, uniaxial
//! magneto-crystalline anisotropy, the external (Zeeman) field, the
//! demagnetizing field and, optionally, Brown's thermal field. Each is a
//! [`FieldTerm`]; the simulation sums their contributions every evaluation
//! of the right-hand side.

pub mod anisotropy;
pub mod demag;
pub mod exchange;
pub mod thermal;
pub mod zeeman;

use crate::math::Vec3;
use crate::MU0;

/// One contribution to the effective field.
///
/// Implementations add their field (in A/m) into `h`, indexed identically
/// to the magnetization buffer `m` (unit vectors, row-major mesh order).
pub trait FieldTerm: Send + Sync {
    /// Short name for diagnostics (e.g. `"exchange"`).
    fn name(&self) -> &'static str;

    /// Adds this term's field at simulation time `t` (seconds) into `h`.
    fn accumulate(&self, m: &[Vec3], t: f64, h: &mut [Vec3]);

    /// Energy prefactor: 0.5 for self-consistent (quadratic-in-m) terms
    /// such as exchange, anisotropy and demag; 1.0 for external fields.
    fn energy_prefactor(&self) -> f64 {
        0.5
    }

    /// Total energy of this term in joules:
    /// `E = -p·μ₀·Ms·V_cell·Σ m_i·H_i` with `p` the prefactor.
    fn energy(&self, m: &[Vec3], t: f64, ms: f64, cell_volume: f64) -> f64 {
        let mut h = vec![Vec3::ZERO; m.len()];
        self.accumulate(m, t, &mut h);
        let dot: f64 = m.iter().zip(h.iter()).map(|(mi, hi)| mi.dot(*hi)).sum();
        -self.energy_prefactor() * MU0 * ms * cell_volume * dot
    }
}

#[cfg(test)]
mod tests {
    use super::zeeman::Zeeman;
    use super::*;

    #[test]
    fn energy_uses_prefactor_and_volume() {
        // A uniform 1 A/m field along z acting on one cell magnetized
        // along z: E = -μ₀·Ms·V·1.
        let z = Zeeman::uniform(Vec3::Z);
        let m = vec![Vec3::Z];
        let e = z.energy(&m, 0.0, 1.0, 2.0);
        assert!((e + MU0 * 2.0).abs() < 1e-20);
    }
}
