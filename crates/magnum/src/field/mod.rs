//! Effective-field contributions to the LLG equation.
//!
//! Every physical interaction contributes a term to the effective field
//! `H_eff` of equation (1) in the paper: exchange, uniaxial
//! magneto-crystalline anisotropy, the external (Zeeman) field, the
//! demagnetizing field and, optionally, Brown's thermal field. Each is a
//! [`FieldTerm`]; the simulation sums their contributions every evaluation
//! of the right-hand side.

pub mod anisotropy;
pub mod demag;
pub mod exchange;
pub mod thermal;
pub mod zeeman;

use std::any::Any;

use crate::field3::Field3;
use crate::math::Vec3;
use crate::par::WorkerTeam;
use crate::MU0;

/// A field term compiled down to a branch-light per-cell operation, so the
/// parallel engine can evaluate the whole effective field in one fused
/// pass over the magnetic cells instead of one full-mesh traversal per
/// term. The per-cell arithmetic mirrors the term's `accumulate` exactly
/// (same operations in the same order), keeping fused results bitwise
/// identical to the term-by-term path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedTerm {
    /// Uniform field added to every cell (Zeeman).
    Uniform(Vec3),
    /// Uniaxial anisotropy `h += axis·(coeff·m·axis)`.
    Uniaxial {
        /// 2Ku₁/(μ₀Ms) in A/m.
        coeff: f64,
        /// Easy axis (unit vector).
        axis: Vec3,
    },
    /// Thin-film demag `h_z -= Ms·m_z`.
    ThinFilm {
        /// Saturation magnetization in A/m.
        ms: f64,
    },
    /// 4-neighbour exchange Laplacian with per-axis coefficients.
    Exchange {
        /// 2A/(μ₀·Ms·dx²) in A/m.
        coeff_x: f64,
        /// 2A/(μ₀·Ms·dy²) in A/m.
        coeff_y: f64,
    },
}

/// One contribution to the effective field.
///
/// Implementations add their field (in A/m) into `h`, indexed identically
/// to the magnetization buffer `m` (unit vectors, row-major mesh order).
pub trait FieldTerm: Send + Sync {
    /// Short name for diagnostics (e.g. `"exchange"`).
    fn name(&self) -> &'static str;

    /// Adds this term's field at simulation time `t` (seconds) into `h`.
    ///
    /// This is the thread-safe reference path: it must work from any
    /// thread without external state (terms with internal scratch guard
    /// it themselves). Energy accounting, probes and `effective_field`
    /// all go through here.
    fn accumulate(&self, m: &[Vec3], t: f64, h: &mut [Vec3]);

    /// Allocates this term's per-system scratch state, if it needs any.
    ///
    /// The [`crate::llg::LlgSystem`] owns one scratch per term and
    /// threads it back through [`FieldTerm::accumulate_par`] on the hot
    /// path, so terms with large working buffers (the FFT demag) avoid
    /// both per-call allocation and lock contention. Terms without
    /// scratch return `None` (the default).
    fn make_scratch(&self) -> Option<Box<dyn Any + Send + Sync>> {
        None
    }

    /// Hot-path variant of [`FieldTerm::accumulate`]: reads the SoA
    /// magnetization planes and adds into SoA field planes, and may use
    /// the system's worker `team` and the term's own `scratch` (as
    /// created by [`FieldTerm::make_scratch`]).
    ///
    /// Must produce bitwise-identical fields to `accumulate` for any
    /// team size — the per-cell arithmetic may not depend on the thread
    /// partition, and the SoA↔AoS layout change is a pure permutation of
    /// `f64` values. The default round-trips through `accumulate`; terms
    /// on the hot path (the FFT demag) override it to stream the planes
    /// directly.
    fn accumulate_par(
        &self,
        m: &Field3,
        t: f64,
        h: &mut Field3,
        team: &WorkerTeam,
        scratch: Option<&mut (dyn Any + Send + Sync)>,
    ) {
        let _ = (team, scratch);
        let mv = m.to_vec();
        let mut hv = h.to_vec();
        self.accumulate(&mv, t, &mut hv);
        h.copy_from_vec3s(&hv);
    }

    /// The fused per-cell form of this term, if it has one. Terms that
    /// return `None` (non-local fields such as the FFT demag) are
    /// evaluated by `accumulate` in a serial pre-pass; everything else is
    /// executed inside the fused parallel kernel.
    fn fused(&self) -> Option<FusedTerm> {
        None
    }

    /// Energy prefactor: 0.5 for self-consistent (quadratic-in-m) terms
    /// such as exchange, anisotropy and demag; 1.0 for external fields.
    fn energy_prefactor(&self) -> f64 {
        0.5
    }

    /// Total energy of this term in joules:
    /// `E = -p·μ₀·Ms·V_cell·Σ m_i·H_i` with `p` the prefactor.
    fn energy(&self, m: &[Vec3], t: f64, ms: f64, cell_volume: f64) -> f64 {
        let mut h = vec![Vec3::ZERO; m.len()];
        self.accumulate(m, t, &mut h);
        let dot: f64 = m.iter().zip(h.iter()).map(|(mi, hi)| mi.dot(*hi)).sum();
        -self.energy_prefactor() * MU0 * ms * cell_volume * dot
    }
}

#[cfg(test)]
mod tests {
    use super::zeeman::Zeeman;
    use super::*;

    #[test]
    fn energy_uses_prefactor_and_volume() {
        // A uniform 1 A/m field along z acting on one cell magnetized
        // along z: E = -μ₀·Ms·V·1.
        let z = Zeeman::uniform(Vec3::Z);
        let m = vec![Vec3::Z];
        let e = z.energy(&m, 0.0, 1.0, 2.0);
        assert!((e + MU0 * 2.0).abs() < 1e-20);
    }
}
