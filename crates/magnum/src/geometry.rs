//! Shape combinators for carving device geometries out of a mesh.
//!
//! The paper's triangle gates are unions of rotated waveguide bars
//! ([`Bar`]) plus rectangular input/output stubs ([`Rect`]). Shapes are
//! composed with [`ShapeExt::union`] / [`ShapeExt::intersect`] /
//! [`ShapeExt::subtract`] and rasterized onto a [`Mesh`] with
//! [`rasterize`]. [`Rough`] adds correlated edge roughness for the
//! variability experiments of §IV-D.

use crate::mesh::Mesh;

/// A 2-D region that can answer point-membership queries.
///
/// Coordinates are physical metres with the origin at the mesh corner.
///
/// ```
/// use magnum::geometry::{Rect, Shape, ShapeExt};
/// let left = Rect::new(0.0, 0.0, 1.0, 1.0);
/// let right = Rect::new(2.0, 0.0, 3.0, 1.0);
/// let both = left.union(right);
/// assert!(both.contains(0.5, 0.5));
/// assert!(both.contains(2.5, 0.5));
/// assert!(!both.contains(1.5, 0.5));
/// ```
pub trait Shape: Send + Sync {
    /// Whether the physical point `(x, y)` (metres) lies inside the shape.
    fn contains(&self, x: f64, y: f64) -> bool;
}

impl<S: Shape + ?Sized> Shape for Box<S> {
    fn contains(&self, x: f64, y: f64) -> bool {
        (**self).contains(x, y)
    }
}

impl<S: Shape + ?Sized> Shape for &S {
    fn contains(&self, x: f64, y: f64) -> bool {
        (**self).contains(x, y)
    }
}

/// Combinator methods available on every [`Shape`].
pub trait ShapeExt: Shape + Sized {
    /// Set union: a point is inside if it is inside either shape.
    fn union<T: Shape>(self, other: T) -> Union<Self, T> {
        Union { a: self, b: other }
    }

    /// Set intersection.
    fn intersect<T: Shape>(self, other: T) -> Intersection<Self, T> {
        Intersection { a: self, b: other }
    }

    /// Set difference `self \ other`.
    fn subtract<T: Shape>(self, other: T) -> Difference<Self, T> {
        Difference { a: self, b: other }
    }

    /// Type-erases the shape, allowing heterogeneous collections.
    fn boxed(self) -> Box<dyn Shape>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Shape + Sized> ShapeExt for S {}

/// The empty shape (contains nothing). Useful as a fold seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Empty;

impl Shape for Empty {
    fn contains(&self, _x: f64, _y: f64) -> bool {
        false
    }
}

/// Axis-aligned rectangle spanning `[x0, x1] × [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Creates a rectangle; the corner order does not matter.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }
}

impl Shape for Rect {
    fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }
}

/// Disc of radius `r` centred on `(cx, cy)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    cx: f64,
    cy: f64,
    r: f64,
}

impl Circle {
    /// Creates a disc. `r` must be non-negative.
    pub fn new(cx: f64, cy: f64, r: f64) -> Self {
        Circle {
            cx,
            cy,
            r: r.max(0.0),
        }
    }
}

impl Shape for Circle {
    fn contains(&self, x: f64, y: f64) -> bool {
        let dx = x - self.cx;
        let dy = y - self.cy;
        dx * dx + dy * dy <= self.r * self.r
    }
}

/// A thick line segment ("waveguide bar") from `p0` to `p1` with a given
/// width — the workhorse for the paper's diagonal triangle arms.
///
/// A point is inside if its distance to the segment is at most `width/2`,
/// which gives the bar rounded end caps; combine with [`Rect`]s when flat
/// ends are needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bar {
    p0: (f64, f64),
    p1: (f64, f64),
    half_width: f64,
}

impl Bar {
    /// Creates a bar between two points with total `width`.
    pub fn new(p0: (f64, f64), p1: (f64, f64), width: f64) -> Self {
        Bar {
            p0,
            p1,
            half_width: (width / 2.0).max(0.0),
        }
    }

    /// Segment length (between the end points, excluding the caps).
    pub fn length(&self) -> f64 {
        let dx = self.p1.0 - self.p0.0;
        let dy = self.p1.1 - self.p0.1;
        dx.hypot(dy)
    }

    fn distance_to_segment(&self, x: f64, y: f64) -> f64 {
        let (x0, y0) = self.p0;
        let (x1, y1) = self.p1;
        let dx = x1 - x0;
        let dy = y1 - y0;
        let len_sq = dx * dx + dy * dy;
        let t = if len_sq == 0.0 {
            0.0
        } else {
            (((x - x0) * dx + (y - y0) * dy) / len_sq).clamp(0.0, 1.0)
        };
        let px = x0 + t * dx;
        let py = y0 + t * dy;
        (x - px).hypot(y - py)
    }
}

impl Shape for Bar {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.distance_to_segment(x, y) <= self.half_width
    }
}

/// Simple polygon defined by its vertices (even-odd rule).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<(f64, f64)>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are given.
    pub fn new(vertices: Vec<(f64, f64)>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        Polygon { vertices }
    }
}

impl Shape for Polygon {
    fn contains(&self, x: f64, y: f64) -> bool {
        // Even-odd ray casting.
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = self.vertices[i];
            let (xj, yj) = self.vertices[j];
            if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }
}

/// Union of two shapes (see [`ShapeExt::union`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Union<A, B> {
    a: A,
    b: B,
}

impl<A: Shape, B: Shape> Shape for Union<A, B> {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.a.contains(x, y) || self.b.contains(x, y)
    }
}

/// Intersection of two shapes (see [`ShapeExt::intersect`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intersection<A, B> {
    a: A,
    b: B,
}

impl<A: Shape, B: Shape> Shape for Intersection<A, B> {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.a.contains(x, y) && self.b.contains(x, y)
    }
}

/// Difference of two shapes (see [`ShapeExt::subtract`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Difference<A, B> {
    a: A,
    b: B,
}

impl<A: Shape, B: Shape> Shape for Difference<A, B> {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.a.contains(x, y) && !self.b.contains(x, y)
    }
}

/// Union of an arbitrary collection of boxed shapes.
#[derive(Default)]
pub struct ShapeSet {
    shapes: Vec<Box<dyn Shape>>,
}

impl ShapeSet {
    /// Creates an empty set (contains nothing).
    pub fn new() -> Self {
        ShapeSet::default()
    }

    /// Adds a shape to the union.
    pub fn push<S: Shape + 'static>(&mut self, shape: S) {
        self.shapes.push(Box::new(shape));
    }

    /// Number of member shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True if the set has no member shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

impl Shape for ShapeSet {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.shapes.iter().any(|s| s.contains(x, y))
    }
}

impl std::fmt::Debug for ShapeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapeSet")
            .field("len", &self.shapes.len())
            .finish()
    }
}

/// Adds deterministic correlated edge roughness to a shape.
///
/// The sampling point is displaced by a smooth pseudo-random field before
/// the membership test, which perturbs every edge of the inner shape by up
/// to ± `amplitude` with lateral correlation length `correlation` — the
/// standard model for lithographic line-edge roughness used in the
/// variability studies the paper cites (\[36\], \[43\]).
pub struct Rough<S> {
    inner: S,
    amplitude: f64,
    correlation: f64,
    seed: u64,
}

impl<S: Shape> Rough<S> {
    /// Wraps `inner` with roughness of the given `amplitude` (metres),
    /// `correlation` length (metres) and RNG `seed`.
    pub fn new(inner: S, amplitude: f64, correlation: f64, seed: u64) -> Self {
        Rough {
            inner,
            amplitude: amplitude.max(0.0),
            correlation: correlation.abs().max(1e-12),
            seed,
        }
    }

    /// Smooth value noise in [-1, 1] on a lattice of pitch `correlation`.
    fn noise(&self, x: f64, y: f64, channel: u64) -> f64 {
        let u = x / self.correlation;
        let v = y / self.correlation;
        let iu = u.floor();
        let iv = v.floor();
        let fu = u - iu;
        let fv = v - iv;
        // Smoothstep weights give C¹-continuous noise.
        let su = fu * fu * (3.0 - 2.0 * fu);
        let sv = fv * fv * (3.0 - 2.0 * fv);
        let corner = |du: i64, dv: i64| -> f64 {
            lattice_hash(self.seed, channel, iu as i64 + du, iv as i64 + dv)
        };
        let n00 = corner(0, 0);
        let n10 = corner(1, 0);
        let n01 = corner(0, 1);
        let n11 = corner(1, 1);
        let nx0 = n00 + su * (n10 - n00);
        let nx1 = n01 + su * (n11 - n01);
        nx0 + sv * (nx1 - nx0)
    }
}

impl<S: Shape> Shape for Rough<S> {
    fn contains(&self, x: f64, y: f64) -> bool {
        let dx = self.amplitude * self.noise(x, y, 0);
        let dy = self.amplitude * self.noise(x, y, 1);
        self.inner.contains(x + dx, y + dy)
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Rough<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rough")
            .field("inner", &self.inner)
            .field("amplitude", &self.amplitude)
            .field("correlation", &self.correlation)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Deterministic hash of a lattice point, mapped to [-1, 1].
fn lattice_hash(seed: u64, channel: u64, iu: i64, iv: i64) -> f64 {
    // SplitMix64 over the packed coordinates.
    let mut z = seed
        ^ channel.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iu as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (iv as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Rasterizes a shape onto a mesh: cells whose centre lies inside the
/// shape become magnetic, all others become vacuum.
pub fn rasterize<S: Shape>(mesh: &mut Mesh, shape: &S) {
    mesh.set_mask_by(|x, y| shape.contains(x, y));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_its_interior_and_boundary() {
        let r = Rect::new(1.0, 1.0, 3.0, 2.0);
        assert!(r.contains(2.0, 1.5));
        assert!(r.contains(1.0, 1.0));
        assert!(r.contains(3.0, 2.0));
        assert!(!r.contains(0.99, 1.5));
        assert!(!r.contains(2.0, 2.01));
    }

    #[test]
    fn rect_corner_order_is_normalized() {
        let r = Rect::new(3.0, 2.0, 1.0, 1.0);
        assert!(r.contains(2.0, 1.5));
        assert!((r.width() - 2.0).abs() < 1e-15);
        assert!((r.height() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn circle_membership() {
        let c = Circle::new(0.0, 0.0, 1.0);
        assert!(c.contains(0.7, 0.7));
        assert!(!c.contains(0.8, 0.8));
        assert!(c.contains(1.0, 0.0));
    }

    #[test]
    fn bar_is_a_thick_segment_with_caps() {
        let b = Bar::new((0.0, 0.0), (10.0, 0.0), 2.0);
        assert!(b.contains(5.0, 0.9));
        assert!(!b.contains(5.0, 1.1));
        // Rounded cap beyond the end point.
        assert!(b.contains(10.5, 0.0));
        assert!(!b.contains(11.1, 0.0));
        assert!((b.length() - 10.0).abs() < 1e-15);
    }

    #[test]
    fn diagonal_bar_contains_midpoint() {
        let b = Bar::new((0.0, 0.0), (10.0, 10.0), 1.0);
        assert!(b.contains(5.0, 5.0));
        assert!(!b.contains(5.0, 6.0));
    }

    #[test]
    fn degenerate_bar_is_a_disc() {
        let b = Bar::new((1.0, 1.0), (1.0, 1.0), 2.0);
        assert!(b.contains(1.5, 1.5));
        assert!(!b.contains(2.5, 1.0));
    }

    #[test]
    fn polygon_triangle_membership() {
        let t = Polygon::new(vec![(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]);
        assert!(t.contains(1.0, 1.0));
        assert!(!t.contains(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn polygon_rejects_degenerate() {
        let _ = Polygon::new(vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn boolean_combinators() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 0.0, 3.0, 2.0);
        assert!(a.union(b).contains(2.5, 1.0));
        assert!(a.intersect(b).contains(1.5, 1.0));
        assert!(!a.intersect(b).contains(0.5, 1.0));
        assert!(a.subtract(b).contains(0.5, 1.0));
        assert!(!a.subtract(b).contains(1.5, 1.0));
    }

    #[test]
    fn empty_shape_contains_nothing() {
        assert!(!Empty.contains(0.0, 0.0));
    }

    #[test]
    fn shape_set_unions_members() {
        let mut set = ShapeSet::new();
        assert!(set.is_empty());
        set.push(Rect::new(0.0, 0.0, 1.0, 1.0));
        set.push(Circle::new(5.0, 5.0, 1.0));
        assert_eq!(set.len(), 2);
        assert!(set.contains(0.5, 0.5));
        assert!(set.contains(5.0, 5.5));
        assert!(!set.contains(3.0, 3.0));
    }

    #[test]
    fn rasterize_carves_mask() {
        let mut mesh = Mesh::new(10, 10, [1.0, 1.0, 1.0]).unwrap();
        rasterize(&mut mesh, &Rect::new(0.0, 0.0, 5.0, 10.0));
        assert_eq!(mesh.magnetic_cell_count(), 50);
    }

    #[test]
    fn roughness_is_deterministic_and_bounded() {
        let base = Rect::new(0.0, 0.0, 100.0, 10.0);
        let rough1 = Rough::new(base, 1.0, 5.0, 42);
        let rough2 = Rough::new(base, 1.0, 5.0, 42);
        // Deterministic: same seed, same answers.
        for i in 0..50 {
            let x = i as f64 * 2.0;
            assert_eq!(rough1.contains(x, 9.5), rough2.contains(x, 9.5));
        }
        // Bounded: points deeper than the amplitude are unaffected.
        assert!(rough1.contains(50.0, 5.0));
        assert!(!rough1.contains(50.0, 12.0));
    }

    #[test]
    fn roughness_zero_amplitude_is_identity() {
        let base = Rect::new(0.0, 0.0, 10.0, 10.0);
        let rough = Rough::new(base, 0.0, 5.0, 7);
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64, j as f64);
                assert_eq!(rough.contains(x, y), base.contains(x, y));
            }
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let base = Rect::new(0.0, 0.0, 100.0, 10.0);
        let r1 = Rough::new(base, 2.0, 3.0, 1);
        let r2 = Rough::new(base, 2.0, 3.0, 2);
        let mut differs = false;
        for i in 0..200 {
            let x = i as f64 * 0.5;
            if r1.contains(x, 9.9) != r2.contains(x, 9.9) {
                differs = true;
                break;
            }
        }
        assert!(differs, "roughness should depend on the seed");
    }
}
