//! Time integrators for the LLG equation.
//!
//! Three integrators are provided, mirroring the options micromagnetic
//! packages offer:
//!
//! * [`Heun`] — 2nd order predictor-corrector; the correct choice when the
//!   thermal field is active (converges to the Stratonovich solution).
//! * [`RungeKutta4`] — classic 4th order fixed-step; the default for
//!   deterministic spin-wave runs.
//! * [`CashKarp45`] — adaptive 5(4) pair with error control, for stiff
//!   setups or when the caller wants accuracy-driven step sizes.
//!
//! All integrators renormalize `|m| = 1` on magnetic cells after each
//! accepted step (the LLG flow conserves the norm exactly; the projection
//! removes the integrator's truncation-error drift).

mod cash_karp;
mod heun;
mod rk4;

pub use cash_karp::CashKarp45;
pub use heun::Heun;
pub use rk4::RungeKutta4;

use crate::error::MagnumError;
use crate::field3::{Field3, Field3Ptr, Field3Read, FieldBatch};
use crate::llg::LlgSystem;
use crate::par::{chunk_bounds, WorkerTeam};

/// `out[i] = a[i] + k[i]·c` over `i0..i1`, one component plane at a time.
///
/// The common stage combination of the fixed-step integrators. Per-plane
/// loops keep each loop at three pointers, within the loop vectorizer's
/// runtime alias-check budget; a single interleaved `Vec3` loop over nine
/// pointers falls back to scalar code. `Vec3` arithmetic is componentwise,
/// so the results are bitwise identical to the fused-per-cell form.
///
/// # Safety
///
/// `i0..i1` must be in bounds for all three buffers, `out` must be owned
/// exclusively by the calling block over that range, and `a`/`k` must not
/// be mutated concurrently there.
#[inline(always)]
pub(crate) unsafe fn axpy_range(
    i0: usize,
    i1: usize,
    out: Field3Ptr,
    a: Field3Read,
    k: Field3Ptr,
    c: f64,
) {
    let (ox, oy, oz) = out.planes();
    let (ax, ay, az) = a.planes();
    let (kx, ky, kz) = k.planes();
    for i in i0..i1 {
        *ox.add(i) = *ax.add(i) + *kx.add(i) * c;
    }
    for i in i0..i1 {
        *oy.add(i) = *ay.add(i) + *ky.add(i) * c;
    }
    for i in i0..i1 {
        *oz.add(i) = *az.add(i) + *kz.add(i) * c;
    }
}

/// A time integrator advancing the magnetization state.
///
/// The state is a SoA [`Field3`]; every stage is a single fused sweep
/// through [`LlgSystem::rhs_stage`], with the stage combination applied
/// in the sweep's `fuse` hook instead of a separate full-mesh pass.
pub trait Integrator: Send {
    /// Advances `m` by one step starting at time `t` with suggested step
    /// `dt`, returning the step size actually taken (adaptive integrators
    /// may take less).
    ///
    /// # Errors
    ///
    /// * [`MagnumError::Diverged`] if the state becomes non-finite.
    /// * [`MagnumError::StepSizeUnderflow`] if an adaptive integrator
    ///   cannot meet its tolerance.
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut Field3,
    ) -> Result<f64, MagnumError>;

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// Which integrator a [`crate::sim::SimulationBuilder`] should construct.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IntegratorKind {
    /// Heun predictor-corrector (use with thermal noise).
    Heun,
    /// Classic fixed-step RK4 (default).
    #[default]
    RungeKutta4,
    /// Adaptive Cash–Karp 5(4) with the given absolute tolerance on `m`.
    CashKarp45 {
        /// Absolute per-step error tolerance on the unit magnetization.
        tolerance: f64,
    },
}

impl IntegratorKind {
    /// Instantiates the integrator for a system of `cells` cells.
    pub fn instantiate(self, cells: usize) -> Box<dyn Integrator> {
        match self {
            IntegratorKind::Heun => Box::new(Heun::new(cells)),
            IntegratorKind::RungeKutta4 => Box::new(RungeKutta4::new(cells)),
            IntegratorKind::CashKarp45 { tolerance } => Box::new(CashKarp45::new(cells, tolerance)),
        }
    }
}

/// Renormalizes magnetic cells to |m| = 1 and reports divergence.
///
/// Runs block-parallel on the system's worker team; per-block results are
/// collected in block order, so the reported error (first bad block) is
/// deterministic for a fixed thread count.
///
/// On a full film (no vacuum anywhere) the mask test disappears and the
/// loop runs tiled: norms for a small tile first, then one divide loop
/// per component plane. Divide and square root are exactly rounded in
/// IEEE 754, so the vectorized tile produces bitwise the same `m` as the
/// per-cell loop; only the state left behind on a `Diverged` error (which
/// aborts the run) can differ within the failing tile.
pub(crate) fn renormalize_and_check(
    m: &mut Field3,
    mask: &[bool],
    full_film: bool,
    t: f64,
    team: &WorkerTeam,
) -> Result<(), MagnumError> {
    let n = m.len();
    let nb = team.threads().max(1);
    debug_assert_eq!(full_film, mask.iter().all(|&magnetic| magnetic));
    let out = m.ptrs();
    let results = team.map_blocks(|b| {
        let (start, end) = chunk_bounds(n, nb, b);
        if full_film {
            // Safety: chunk ranges are disjoint across blocks and in
            // bounds for all three planes.
            unsafe { renormalize_range(out, start, end, t) }
        } else {
            for (i, &magnetic) in mask.iter().enumerate().take(end).skip(start) {
                if !magnetic {
                    continue;
                }
                // Safety: chunk ranges are disjoint across blocks.
                let mut mi = unsafe { out.read(i) };
                if !mi.is_finite() {
                    return Err(MagnumError::Diverged { time: t });
                }
                let norm = mi.norm();
                if norm == 0.0 {
                    return Err(MagnumError::Diverged { time: t });
                }
                mi /= norm;
                unsafe { out.write(i, mi) };
            }
            Ok(())
        }
    });
    results.into_iter().collect()
}

/// Batched analogue of [`renormalize_and_check`]: renormalizes every
/// member of a K-interleaved batch.
///
/// The arithmetic per (cell, member) element — finiteness test, norm,
/// componentwise divide — is exactly the single-system expression
/// sequence, and blocks chunk over *cells* (each owning its cells' full
/// K-lanes), so each member's slice is bitwise identical to an
/// independent run at any thread count.
pub(crate) fn renormalize_and_check_batch(
    m: &mut FieldBatch,
    mask: &[bool],
    full_film: bool,
    t: f64,
    team: &WorkerTeam,
) -> Result<(), MagnumError> {
    let kk = m.k();
    let n = m.cells();
    let nb = team.threads().max(1);
    debug_assert_eq!(full_film, mask.iter().all(|&magnetic| magnetic));
    let out = m.ptrs();
    // The interleaved ranges here are long (cells × K), so the divide-
    // and sqrt-heavy tile body is worth compiling 4-wide where the host
    // supports it; `vdivpd`/`vsqrtpd` are correctly rounded, so results
    // are bitwise identical to the baseline copy.
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
    let renorm = |i0: usize, i1: usize| {
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // Safety: AVX2 support checked at runtime; range safety is
            // the caller's obligation, as for `renormalize_range`.
            return unsafe { renormalize_range_avx2(out, i0, i1, t) };
        }
        // Safety: as above.
        unsafe { renormalize_range(out, i0, i1, t) }
    };
    let results = team.map_blocks(|b| {
        let (start, end) = chunk_bounds(n, nb, b);
        if full_film {
            // Elementwise over the interleaved planes: identical per-lane
            // arithmetic to the single-system tiled body.
            // Safety: cell chunks are disjoint across blocks, so the
            // interleaved ranges are too, and in bounds for all planes.
            renorm(start * kk, end * kk)
        } else {
            // Magnetic cells come in contiguous runs (the rows of the
            // shape), and a run's K lanes are one contiguous interleaved
            // range — so even the masked arm uses the vectorized tile
            // body, run by run. Per lane the arithmetic (norm expression,
            // componentwise divide, acceptance test) is exactly the
            // single-system sequence, so members stay bitwise identical
            // to independent runs.
            let mut i = start;
            while i < end {
                if !mask[i] {
                    i += 1;
                    continue;
                }
                let run0 = i;
                while i < end && mask[i] {
                    i += 1;
                }
                renorm(run0 * kk, i * kk)?;
            }
            Ok(())
        }
    });
    results.into_iter().collect()
}

/// The tiled full-film renormalization body: same per-cell arithmetic as
/// the masked loop (`norm = sqrt(x²+y²+z²)` with the same summation
/// order, componentwise `/= norm`), restructured so each loop touches few
/// enough pointers to vectorize.
///
/// # Safety
///
/// `start..end` must be in bounds for all three planes and owned
/// exclusively by the calling block.
#[inline(always)]
unsafe fn renormalize_range(
    out: Field3Ptr,
    start: usize,
    end: usize,
    t: f64,
) -> Result<(), MagnumError> {
    const TILE: usize = 128;
    let (px, py, pz) = out.planes();
    let mut norms = [0.0f64; TILE];
    let mut i0 = start;
    while i0 < end {
        let i1 = (i0 + TILE).min(end);
        let mut ok = true;
        for i in i0..i1 {
            let (x, y, z) = (*px.add(i), *py.add(i), *pz.add(i));
            let norm = (x * x + y * y + z * z).sqrt();
            norms[i - i0] = norm;
            // Same acceptance test as the masked loop: all components
            // finite and a nonzero norm. An overflowed (infinite) norm
            // with finite components divides through, as before.
            ok &= x.is_finite() && y.is_finite() && z.is_finite() && norm != 0.0;
        }
        if !ok {
            return Err(MagnumError::Diverged { time: t });
        }
        for i in i0..i1 {
            *px.add(i) /= norms[i - i0];
        }
        for i in i0..i1 {
            *py.add(i) /= norms[i - i0];
        }
        for i in i0..i1 {
            *pz.add(i) /= norms[i - i0];
        }
        i0 = i1;
    }
    Ok(())
}

/// [`renormalize_range`] compiled with AVX2 enabled, for hosts that have
/// it (checked at runtime by the caller).
///
/// # Safety
///
/// As for [`renormalize_range`]; additionally the host must support
/// AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn renormalize_range_avx2(
    out: Field3Ptr,
    start: usize,
    end: usize,
    t: f64,
) -> Result<(), MagnumError> {
    // Safety: forwarded contract.
    unsafe { renormalize_range(out, start, end, t) }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::field::zeeman::Zeeman;
    use crate::llg::{LlgSystem, SystemSpec};
    use crate::math::Vec3;
    use crate::GAMMA;

    /// A single macrospin in a uniform +z field — the one LLG problem with
    /// a closed-form solution, used to validate every integrator.
    pub fn macrospin(alpha: f64, h: f64) -> LlgSystem {
        SystemSpec {
            terms: vec![Box::new(Zeeman::uniform(Vec3::Z * h))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![alpha],
            gamma: GAMMA,
            mask: vec![true],
            nx: 1,
            threads: 1,
        }
        .build()
    }

    /// Analytic macrospin solution starting from m = x̂ at t = 0:
    /// precession at ω = γμ₀H/(1+α²) while the polar angle obeys
    /// tan(θ/2) = tan(θ₀/2)·exp(−αωt).
    pub fn macrospin_analytic(alpha: f64, h: f64, t: f64) -> Vec3 {
        let omega = GAMMA * crate::MU0 * h / (1.0 + alpha * alpha);
        // dm/dt = −γμ₀ m×H: with H ∥ +ẑ and m = x̂ this is +γμ₀H·ŷ, so the
        // azimuth increases with time under this sign convention.
        let phi = omega * t;
        let theta0: f64 = std::f64::consts::FRAC_PI_2;
        let theta = 2.0 * ((theta0 / 2.0).tan() * (-alpha * omega * t).exp()).atan();
        Vec3::new(
            theta.sin() * phi.cos(),
            theta.sin() * phi.sin(),
            theta.cos(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::math::Vec3;

    fn run_integrator(
        mut integrator: Box<dyn Integrator>,
        alpha: f64,
        h: f64,
        t_end: f64,
        dt: f64,
    ) -> Vec3 {
        let mut sys = macrospin(alpha, h);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let mut t = 0.0;
        while t < t_end - 1e-18 {
            let step = dt.min(t_end - t);
            let taken = integrator
                .step(&mut sys, t, step, &mut m)
                .expect("step failed");
            t += taken;
        }
        m.get(0)
    }

    #[test]
    fn all_integrators_match_macrospin_analytics() {
        let alpha = 0.1;
        let h = 1e5;
        let t_end = 50e-12;
        let expected = macrospin_analytic(alpha, h, t_end);
        for kind in [
            IntegratorKind::Heun,
            IntegratorKind::RungeKutta4,
            IntegratorKind::CashKarp45 { tolerance: 1e-8 },
        ] {
            let m = run_integrator(kind.instantiate(1), alpha, h, t_end, 5e-15);
            let err = (m - expected).norm();
            assert!(
                err < 1e-4,
                "{kind:?} error vs analytic solution too large: {err} (m = {m}, expected {expected})"
            );
        }
    }

    #[test]
    fn integrators_preserve_unit_norm() {
        for kind in [
            IntegratorKind::Heun,
            IntegratorKind::RungeKutta4,
            IntegratorKind::CashKarp45 { tolerance: 1e-7 },
        ] {
            let m = run_integrator(kind.instantiate(1), 0.02, 5e5, 100e-12, 1e-14);
            assert!(
                (m.norm() - 1.0).abs() < 1e-12,
                "{kind:?} drifted off the unit sphere"
            );
        }
    }

    #[test]
    fn rk4_is_more_accurate_than_heun_at_same_step() {
        let alpha = 0.05;
        let h = 2e5;
        let t_end = 100e-12;
        let dt = 1e-13;
        let expected = macrospin_analytic(alpha, h, t_end);
        let err_heun =
            (run_integrator(Box::new(Heun::new(1)), alpha, h, t_end, dt) - expected).norm();
        let err_rk4 =
            (run_integrator(Box::new(RungeKutta4::new(1)), alpha, h, t_end, dt) - expected).norm();
        assert!(
            err_rk4 < err_heun,
            "RK4 ({err_rk4}) should beat Heun ({err_heun}) at dt = {dt}"
        );
    }

    #[test]
    fn renormalize_rejects_nan() {
        let team = WorkerTeam::new(1);
        let mut m = Field3::from_vec3s(&[Vec3::new(f64::NAN, 0.0, 0.0)]);
        let err = renormalize_and_check(&mut m, &[true], true, 1e-9, &team);
        assert!(matches!(err, Err(MagnumError::Diverged { .. })));
    }

    #[test]
    fn renormalize_skips_vacuum() {
        let team = WorkerTeam::new(1);
        let mut m = Field3::zeros(1);
        renormalize_and_check(&mut m, &[false], false, 0.0, &team)
            .expect("vacuum zero vector is fine");
        assert_eq!(m.get(0), Vec3::ZERO);
    }

    #[test]
    fn renormalize_is_identical_serial_and_parallel() {
        let n = 137;
        let mask: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let original: Vec<Vec3> = (0..n)
            .map(|i| {
                if mask[i] {
                    Vec3::new(1.0 + 0.01 * i as f64, -0.3, 0.5 * (i as f64).sin())
                } else {
                    Vec3::ZERO
                }
            })
            .collect();
        let mut serial = Field3::from_vec3s(&original);
        renormalize_and_check(&mut serial, &mask, false, 0.0, &WorkerTeam::new(1)).unwrap();
        let mut parallel = Field3::from_vec3s(&original);
        renormalize_and_check(&mut parallel, &mask, false, 0.0, &WorkerTeam::new(4)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_kind_is_rk4() {
        assert_eq!(IntegratorKind::default(), IntegratorKind::RungeKutta4);
    }
}
