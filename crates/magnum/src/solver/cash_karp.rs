//! Adaptive Cash–Karp 5(4) embedded Runge–Kutta integrator.

use super::{renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::llg::LlgSystem;
use crate::math::Vec3;

/// Adaptive 5th-order integrator with an embedded 4th-order error
/// estimate (Cash–Karp coefficients).
///
/// The step is retried with a smaller `dt` until the max-norm of the
/// difference between the 5th- and 4th-order solutions is below the
/// configured tolerance; the accepted step size is returned and the next
/// suggestion is available via [`CashKarp45::suggested_dt`].
#[derive(Debug)]
pub struct CashKarp45 {
    tolerance: f64,
    suggested: Option<f64>,
    k: [Vec<Vec3>; 6],
    stage: Vec<Vec3>,
    y5: Vec<Vec3>,
    h_scratch: Vec<Vec3>,
}

// Cash–Karp Butcher tableau.
const A: [[f64; 5]; 5] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
    [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
    [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
    [
        1631.0 / 55296.0,
        175.0 / 512.0,
        575.0 / 13824.0,
        44275.0 / 110592.0,
        253.0 / 4096.0,
    ],
];
const C: [f64; 6] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 3.0 / 5.0, 1.0, 7.0 / 8.0];
const B5: [f64; 6] = [
    37.0 / 378.0,
    0.0,
    250.0 / 621.0,
    125.0 / 594.0,
    0.0,
    512.0 / 1771.0,
];
const B4: [f64; 6] = [
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
];

impl CashKarp45 {
    /// Creates an adaptive integrator for `cells` cells with the given
    /// absolute per-step tolerance on the unit magnetization.
    pub fn new(cells: usize, tolerance: f64) -> Self {
        CashKarp45 {
            tolerance: tolerance.max(1e-14),
            suggested: None,
            k: std::array::from_fn(|_| vec![Vec3::ZERO; cells]),
            stage: vec![Vec3::ZERO; cells],
            y5: vec![Vec3::ZERO; cells],
            h_scratch: vec![Vec3::ZERO; cells],
        }
    }

    /// The step size the controller would like to use next, if a step has
    /// been taken already.
    pub fn suggested_dt(&self) -> Option<f64> {
        self.suggested
    }

    /// Evaluates the six stages and returns the max-norm error estimate.
    ///
    /// The per-block error maxima are folded in block order; `f64::max`
    /// over disjoint index sets is exact, so the estimate (and therefore
    /// the step-size control path) is identical for any thread count.
    fn attempt(&mut self, system: &mut LlgSystem, t: f64, dt: f64, m: &[Vec3]) -> f64 {
        system.rhs(m, t, &mut self.k[0], &mut self.h_scratch);
        for s in 1..6 {
            {
                let k = &self.k;
                system
                    .par()
                    .for_each_chunk(&mut self.stage, |start, chunk| {
                        for (j, stage) in chunk.iter_mut().enumerate() {
                            let i = start + j;
                            let mut acc = m[i];
                            for (jj, a) in A[s - 1].iter().enumerate().take(s) {
                                acc += k[jj][i] * (a * dt);
                            }
                            *stage = acc;
                        }
                    });
            }
            // Split borrows: k[s] is written, k[0..s] were read above.
            let (head, tail) = self.k.split_at_mut(s);
            let _ = head;
            system.rhs(
                &self.stage,
                t + C[s] * dt,
                &mut tail[0],
                &mut self.h_scratch,
            );
        }
        let n = m.len();
        let team = system.par();
        let nb = team.threads().max(1);
        let k = &self.k;
        let out = crate::par::SendPtr::new(self.y5.as_mut_ptr());
        let partials = team.map_blocks(|b| {
            let (start, end) = crate::par::chunk_bounds(n, nb, b);
            let mut err: f64 = 0.0;
            for i in start..end {
                let mut y5 = m[i];
                let mut y4 = m[i];
                for s in 0..6 {
                    y5 += k[s][i] * (B5[s] * dt);
                    y4 += k[s][i] * (B4[s] * dt);
                }
                // Safety: chunk ranges are disjoint across blocks.
                unsafe { *out.add(i) = y5 };
                err = err.max((y5 - y4).norm());
            }
            err
        });
        partials.into_iter().fold(0.0, f64::max)
    }
}

impl Integrator for CashKarp45 {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut [Vec3],
    ) -> Result<f64, MagnumError> {
        let mut h = self.suggested.map_or(dt, |s| s.min(dt));
        let min_step = dt * 1e-6;
        loop {
            let err = self.attempt(system, t, h, m);
            if !err.is_finite() {
                // Retry with a much smaller step before giving up.
                h *= 0.1;
                if h < min_step {
                    return Err(MagnumError::Diverged { time: t });
                }
                continue;
            }
            if err <= self.tolerance {
                m.copy_from_slice(&self.y5);
                renormalize_and_check(m, &system.mask, t + h, system.par())?;
                // Controller: grow conservatively, cap at the hint `dt`.
                let factor = if err == 0.0 {
                    5.0
                } else {
                    (0.9 * (self.tolerance / err).powf(0.2)).clamp(0.2, 5.0)
                };
                self.suggested = Some((h * factor).min(dt));
                return Ok(h);
            }
            let factor = (0.9 * (self.tolerance / err).powf(0.25)).clamp(0.1, 0.9);
            h *= factor;
            if h < min_step {
                return Err(MagnumError::StepSizeUnderflow { time: t });
            }
        }
    }

    fn name(&self) -> &'static str {
        "cash_karp_45"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn meets_tolerance_on_macrospin() {
        let alpha = 0.1;
        let h0 = 1e5;
        let t_end = 100e-12;
        let mut sys = macrospin(alpha, h0);
        let mut integ = CashKarp45::new(1, 1e-10);
        let mut m = vec![Vec3::X];
        let mut t = 0.0;
        while t < t_end - 1e-18 {
            let taken = integ
                .step(&mut sys, t, (t_end - t).min(1e-12), &mut m)
                .unwrap();
            t += taken;
        }
        let expected = macrospin_analytic(alpha, h0, t_end);
        assert!(
            (m[0] - expected).norm() < 1e-6,
            "adaptive error {}",
            (m[0] - expected).norm()
        );
    }

    #[test]
    fn shrinks_step_when_tolerance_is_tight() {
        let mut sys = macrospin(0.1, 1e6);
        let mut integ = CashKarp45::new(1, 1e-12);
        let mut m = vec![Vec3::X];
        let taken = integ.step(&mut sys, 0.0, 1e-11, &mut m).unwrap();
        assert!(taken <= 1e-11);
        assert!(integ.suggested_dt().is_some());
    }

    #[test]
    fn loose_tolerance_accepts_the_hint() {
        let mut sys = macrospin(0.1, 1e4);
        let mut integ = CashKarp45::new(1, 1e-3);
        let mut m = vec![Vec3::X];
        let taken = integ.step(&mut sys, 0.0, 1e-14, &mut m).unwrap();
        assert_eq!(taken, 1e-14);
    }

    #[test]
    fn suggestion_never_exceeds_hint() {
        let mut sys = macrospin(0.05, 1e5);
        let mut integ = CashKarp45::new(1, 1e-6);
        let mut m = vec![Vec3::X];
        for i in 0..50 {
            integ
                .step(&mut sys, i as f64 * 1e-13, 1e-13, &mut m)
                .unwrap();
            assert!(integ.suggested_dt().unwrap() <= 1e-13 + 1e-30);
        }
    }
}
