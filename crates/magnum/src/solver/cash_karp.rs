//! Adaptive Cash–Karp 5(4) embedded Runge–Kutta integrator.

use super::{renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::field3::Field3;
use crate::llg::LlgSystem;
use crate::par::chunk_bounds;

/// Adaptive 5th-order integrator with an embedded 4th-order error
/// estimate (Cash–Karp coefficients).
///
/// The step is retried with a smaller `dt` until the max-norm of the
/// difference between the 5th- and 4th-order solutions is below the
/// configured tolerance; the accepted step size is returned and the next
/// suggestion is available via [`CashKarp45::suggested_dt`].
///
/// Each of the six stages is one fused sweep: the sweep computing `k_s`
/// also assembles the stage input for `k_{s+1}` (the `m + Σ a·dt·k`
/// combination, accumulated in the same ascending order as the old
/// separate stage pass) in its fuse hook. Two stage buffers ping-pong so
/// a sweep never writes the buffer its field evaluation reads. The
/// embedded-error finish remains its own block-parallel reduction, as it
/// was before the fusion.
#[derive(Debug)]
pub struct CashKarp45 {
    tolerance: f64,
    suggested: Option<f64>,
    k: [Field3; 6],
    stage_a: Field3,
    stage_b: Field3,
    y5: Field3,
    h_scratch: Field3,
}

// Cash–Karp Butcher tableau.
const A: [[f64; 5]; 5] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
    [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
    [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
    [
        1631.0 / 55296.0,
        175.0 / 512.0,
        575.0 / 13824.0,
        44275.0 / 110592.0,
        253.0 / 4096.0,
    ],
];
const C: [f64; 6] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 3.0 / 5.0, 1.0, 7.0 / 8.0];
const B5: [f64; 6] = [
    37.0 / 378.0,
    0.0,
    250.0 / 621.0,
    125.0 / 594.0,
    0.0,
    512.0 / 1771.0,
];
const B4: [f64; 6] = [
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
];

impl CashKarp45 {
    /// Creates an adaptive integrator for `cells` cells with the given
    /// absolute per-step tolerance on the unit magnetization.
    pub fn new(cells: usize, tolerance: f64) -> Self {
        CashKarp45 {
            tolerance: tolerance.max(1e-14),
            suggested: None,
            k: std::array::from_fn(|_| Field3::zeros(cells)),
            stage_a: Field3::zeros(cells),
            stage_b: Field3::zeros(cells),
            y5: Field3::zeros(cells),
            h_scratch: Field3::zeros(cells),
        }
    }

    /// The step size the controller would like to use next, if a step has
    /// been taken already.
    pub fn suggested_dt(&self) -> Option<f64> {
        self.suggested
    }

    /// Evaluates the six stages and returns the max-norm error estimate.
    ///
    /// The per-block error maxima are folded in block order; `f64::max`
    /// over disjoint index sets is exact, so the estimate (and therefore
    /// the step-size control path) is identical for any thread count.
    fn attempt(&mut self, system: &mut LlgSystem, t: f64, dt: f64, m: &Field3) -> f64 {
        let m_r = m.read_ptr();
        for s in 0..6 {
            // Split borrows: k[s] is written, k[0..s] are read in the
            // fuse hook — through unchecked `Field3Read` pointers taken
            // after the split, so the fused inner loop stays branch-free.
            let (head, tail) = self.k.split_at_mut(s);
            let head_r: Vec<_> = head.iter().map(|kb| kb.read_ptr()).collect();
            let k_out = &mut tail[0];
            let (y, out): (&Field3, _) = match s {
                0 => (m, self.stage_a.ptrs()),
                _ if s % 2 == 1 => (&self.stage_a, self.stage_b.ptrs()),
                _ => (&self.stage_b, self.stage_a.ptrs()),
            };
            let ts = if s == 0 { t } else { t + C[s] * dt };
            // Safety (all unchecked reads below): each block fuses a
            // disjoint index set, `i` is in bounds for every buffer, and
            // the buffers behind `m_r`/`head_r` are not mutated during
            // the sweep.
            system.rhs_stage(y, ts, k_out, &mut self.h_scratch, |i0, i1, k| {
                if s == 5 {
                    return;
                }
                for i in i0..i1 {
                    let mut acc = unsafe { m_r.get(i) };
                    for (jj, kb) in head_r.iter().enumerate() {
                        acc += unsafe { kb.get(i) } * (A[s][jj] * dt);
                    }
                    acc += unsafe { k.read(i) } * (A[s][s] * dt);
                    // Safety: the sweep's field evaluation never reads
                    // `out`.
                    unsafe { out.write(i, acc) };
                }
            });
        }
        let n = m.len();
        let team = system.par();
        let nb = team.threads().max(1);
        let k = &self.k;
        let out = self.y5.ptrs();
        let partials = team.map_blocks(|b| {
            let (start, end) = chunk_bounds(n, nb, b);
            let mut err: f64 = 0.0;
            for i in start..end {
                let mut y5 = m.get(i);
                let mut y4 = m.get(i);
                for (s, kb) in k.iter().enumerate() {
                    let ks = kb.get(i);
                    y5 += ks * (B5[s] * dt);
                    y4 += ks * (B4[s] * dt);
                }
                // Safety: chunk ranges are disjoint across blocks.
                unsafe { out.write(i, y5) };
                err = err.max((y5 - y4).norm());
            }
            err
        });
        partials.into_iter().fold(0.0, f64::max)
    }
}

impl Integrator for CashKarp45 {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut Field3,
    ) -> Result<f64, MagnumError> {
        let mut h = self.suggested.map_or(dt, |s| s.min(dt));
        let min_step = dt * 1e-6;
        loop {
            let err = self.attempt(system, t, h, m);
            if !err.is_finite() {
                // Retry with a much smaller step before giving up.
                h *= 0.1;
                if h < min_step {
                    return Err(MagnumError::Diverged { time: t });
                }
                continue;
            }
            if err <= self.tolerance {
                m.copy_from(&self.y5);
                renormalize_and_check(m, &system.mask, system.full_film(), t + h, system.par())?;
                // Controller: grow conservatively, cap at the hint `dt`.
                let factor = if err == 0.0 {
                    5.0
                } else {
                    (0.9 * (self.tolerance / err).powf(0.2)).clamp(0.2, 5.0)
                };
                self.suggested = Some((h * factor).min(dt));
                return Ok(h);
            }
            let factor = (0.9 * (self.tolerance / err).powf(0.25)).clamp(0.1, 0.9);
            h *= factor;
            if h < min_step {
                return Err(MagnumError::StepSizeUnderflow { time: t });
            }
        }
    }

    fn name(&self) -> &'static str {
        "cash_karp_45"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn meets_tolerance_on_macrospin() {
        let alpha = 0.1;
        let h0 = 1e5;
        let t_end = 100e-12;
        let mut sys = macrospin(alpha, h0);
        let mut integ = CashKarp45::new(1, 1e-10);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let mut t = 0.0;
        while t < t_end - 1e-18 {
            let taken = integ
                .step(&mut sys, t, (t_end - t).min(1e-12), &mut m)
                .unwrap();
            t += taken;
        }
        let expected = macrospin_analytic(alpha, h0, t_end);
        assert!(
            (m.get(0) - expected).norm() < 1e-6,
            "adaptive error {}",
            (m.get(0) - expected).norm()
        );
    }

    #[test]
    fn shrinks_step_when_tolerance_is_tight() {
        let mut sys = macrospin(0.1, 1e6);
        let mut integ = CashKarp45::new(1, 1e-12);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let taken = integ.step(&mut sys, 0.0, 1e-11, &mut m).unwrap();
        assert!(taken <= 1e-11);
        assert!(integ.suggested_dt().is_some());
    }

    #[test]
    fn loose_tolerance_accepts_the_hint() {
        let mut sys = macrospin(0.1, 1e4);
        let mut integ = CashKarp45::new(1, 1e-3);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let taken = integ.step(&mut sys, 0.0, 1e-14, &mut m).unwrap();
        assert_eq!(taken, 1e-14);
    }

    #[test]
    fn suggestion_never_exceeds_hint() {
        let mut sys = macrospin(0.05, 1e5);
        let mut integ = CashKarp45::new(1, 1e-6);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        for i in 0..50 {
            integ
                .step(&mut sys, i as f64 * 1e-13, 1e-13, &mut m)
                .unwrap();
            assert!(integ.suggested_dt().unwrap() <= 1e-13 + 1e-30);
        }
    }
}
