//! Classic fixed-step fourth-order Runge–Kutta integrator.

use super::{axpy_range, renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::field3::Field3;
use crate::llg::LlgSystem;

/// The classic RK4 scheme — the default workhorse for deterministic
/// spin-wave runs (MuMax3's default family as well).
///
/// Every stage is one fused sweep: the RHS evaluation writes the next
/// stage input (`m + k·dt/2`, …) through the fuse hook, and the final
/// stage applies the `(k1 + 2k2 + 2k3 + k4)·dt/6` combination in place.
/// Two stage buffers ping-pong so a sweep never writes the buffer its
/// field evaluation is reading; `k4` is consumed inside its own sweep, so
/// only its scratch output reuses the idle ping-pong buffer.
#[derive(Debug)]
pub struct RungeKutta4 {
    k1: Field3,
    k2: Field3,
    k3: Field3,
    stage_a: Field3,
    stage_b: Field3,
    h_scratch: Field3,
}

impl RungeKutta4 {
    /// Creates an RK4 integrator for `cells` cells.
    pub fn new(cells: usize) -> Self {
        RungeKutta4 {
            k1: Field3::zeros(cells),
            k2: Field3::zeros(cells),
            k3: Field3::zeros(cells),
            stage_a: Field3::zeros(cells),
            stage_b: Field3::zeros(cells),
            h_scratch: Field3::zeros(cells),
        }
    }
}

impl Integrator for RungeKutta4 {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut Field3,
    ) -> Result<f64, MagnumError> {
        // Safety for every fuse hook below: blocks fuse disjoint cell
        // ranges, no sweep writes a buffer its field evaluation reads,
        // and every read pointer's buffer outlives the sweep. Reads go
        // through unchecked `Field3Read` so the axpy loops stay
        // branch-free and vectorizable.
        {
            let out = self.stage_a.ptrs();
            let m_in = m.read_ptr();
            system.rhs_stage(
                &*m,
                t,
                &mut self.k1,
                &mut self.h_scratch,
                |i0, i1, k| unsafe {
                    axpy_range(i0, i1, out, m_in, k, dt / 2.0);
                },
            );
        }
        {
            let out = self.stage_b.ptrs();
            let m_in = m.read_ptr();
            system.rhs_stage(
                &self.stage_a,
                t + dt / 2.0,
                &mut self.k2,
                &mut self.h_scratch,
                |i0, i1, k| unsafe {
                    axpy_range(i0, i1, out, m_in, k, dt / 2.0);
                },
            );
        }
        {
            let out = self.stage_a.ptrs();
            let m_in = m.read_ptr();
            system.rhs_stage(
                &self.stage_b,
                t + dt / 2.0,
                &mut self.k3,
                &mut self.h_scratch,
                |i0, i1, k| unsafe {
                    axpy_range(i0, i1, out, m_in, k, dt);
                },
            );
        }
        {
            let k1 = self.k1.read_ptr();
            let k2 = self.k2.read_ptr();
            let k3 = self.k3.read_ptr();
            let m_out = m.ptrs();
            system.rhs_stage(
                &self.stage_a,
                t + dt,
                &mut self.stage_b,
                &mut self.h_scratch,
                |i0, i1, k| unsafe {
                    // Per-plane loops, as in `axpy_range`: each loop
                    // reads four k planes and updates one m plane.
                    let (mx, my, mz) = m_out.planes();
                    let (k1x, k1y, k1z) = k1.planes();
                    let (k2x, k2y, k2z) = k2.planes();
                    let (k3x, k3y, k3z) = k3.planes();
                    let (k4x, k4y, k4z) = k.planes();
                    for i in i0..i1 {
                        *mx.add(i) +=
                            (*k1x.add(i) + (*k2x.add(i) + *k3x.add(i)) * 2.0 + *k4x.add(i))
                                * (dt / 6.0);
                    }
                    for i in i0..i1 {
                        *my.add(i) +=
                            (*k1y.add(i) + (*k2y.add(i) + *k3y.add(i)) * 2.0 + *k4y.add(i))
                                * (dt / 6.0);
                    }
                    for i in i0..i1 {
                        *mz.add(i) +=
                            (*k1z.add(i) + (*k2z.add(i) + *k3z.add(i)) * 2.0 + *k4z.add(i))
                                * (dt / 6.0);
                    }
                },
            );
        }
        renormalize_and_check(m, &system.mask, system.full_film(), t + dt, system.par())?;
        Ok(dt)
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn high_accuracy_on_macrospin() {
        let alpha = 0.05;
        let h = 2e5;
        let t_end: f64 = 100e-12;
        let dt = 2e-14;
        let mut sys = macrospin(alpha, h);
        let mut integ = RungeKutta4::new(1);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let steps = (t_end / dt).round() as usize;
        let mut t = 0.0;
        for _ in 0..steps {
            integ.step(&mut sys, t, dt, &mut m).unwrap();
            t += dt;
        }
        let expected = macrospin_analytic(alpha, h, t_end);
        assert!(
            (m.get(0) - expected).norm() < 1e-8,
            "RK4 error {} too large",
            (m.get(0) - expected).norm()
        );
    }

    #[test]
    fn diverges_cleanly_on_absurd_step() {
        // A gigantic dt makes the update blow up; the integrator must
        // report divergence rather than silently continuing.
        let mut sys = macrospin(0.01, 1e7);
        let mut integ = RungeKutta4::new(1);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let mut failed = false;
        for i in 0..100 {
            let t = i as f64;
            match integ.step(&mut sys, t, 1.0, &mut m) {
                Err(MagnumError::Diverged { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
                Ok(_) => {
                    // Renormalization may keep it bounded; that's fine too.
                }
            }
        }
        // Either it diverged and said so, or the projection kept |m| = 1.
        if !failed {
            assert!((m.get(0).norm() - 1.0).abs() < 1e-9);
        }
    }
}
