//! Classic fixed-step fourth-order Runge–Kutta integrator.

use super::{renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::llg::LlgSystem;
use crate::math::Vec3;

/// The classic RK4 scheme — the default workhorse for deterministic
/// spin-wave runs (MuMax3's default family as well).
#[derive(Debug)]
pub struct RungeKutta4 {
    k1: Vec<Vec3>,
    k2: Vec<Vec3>,
    k3: Vec<Vec3>,
    k4: Vec<Vec3>,
    stage: Vec<Vec3>,
    h_scratch: Vec<Vec3>,
}

impl RungeKutta4 {
    /// Creates an RK4 integrator for `cells` cells.
    pub fn new(cells: usize) -> Self {
        RungeKutta4 {
            k1: vec![Vec3::ZERO; cells],
            k2: vec![Vec3::ZERO; cells],
            k3: vec![Vec3::ZERO; cells],
            k4: vec![Vec3::ZERO; cells],
            stage: vec![Vec3::ZERO; cells],
            h_scratch: vec![Vec3::ZERO; cells],
        }
    }
}

impl Integrator for RungeKutta4 {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut [Vec3],
    ) -> Result<f64, MagnumError> {
        system.rhs(m, t, &mut self.k1, &mut self.h_scratch);
        let k1 = &self.k1;
        system
            .par()
            .for_each_chunk(&mut self.stage, |start, chunk| {
                for (j, s) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *s = m[i] + k1[i] * (dt / 2.0);
                }
            });
        system.rhs(&self.stage, t + dt / 2.0, &mut self.k2, &mut self.h_scratch);
        let k2 = &self.k2;
        system
            .par()
            .for_each_chunk(&mut self.stage, |start, chunk| {
                for (j, s) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *s = m[i] + k2[i] * (dt / 2.0);
                }
            });
        system.rhs(&self.stage, t + dt / 2.0, &mut self.k3, &mut self.h_scratch);
        let k3 = &self.k3;
        system
            .par()
            .for_each_chunk(&mut self.stage, |start, chunk| {
                for (j, s) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *s = m[i] + k3[i] * dt;
                }
            });
        system.rhs(&self.stage, t + dt, &mut self.k4, &mut self.h_scratch);
        let k1 = &self.k1;
        let k4 = &self.k4;
        system.par().for_each_chunk(m, |start, chunk| {
            for (j, mi) in chunk.iter_mut().enumerate() {
                let i = start + j;
                *mi += (k1[i] + (k2[i] + k3[i]) * 2.0 + k4[i]) * (dt / 6.0);
            }
        });
        renormalize_and_check(m, &system.mask, t + dt, system.par())?;
        Ok(dt)
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn high_accuracy_on_macrospin() {
        let alpha = 0.05;
        let h = 2e5;
        let t_end: f64 = 100e-12;
        let dt = 2e-14;
        let mut sys = macrospin(alpha, h);
        let mut integ = RungeKutta4::new(1);
        let mut m = vec![Vec3::X];
        let steps = (t_end / dt).round() as usize;
        let mut t = 0.0;
        for _ in 0..steps {
            integ.step(&mut sys, t, dt, &mut m).unwrap();
            t += dt;
        }
        let expected = macrospin_analytic(alpha, h, t_end);
        assert!(
            (m[0] - expected).norm() < 1e-8,
            "RK4 error {} too large",
            (m[0] - expected).norm()
        );
    }

    #[test]
    fn diverges_cleanly_on_absurd_step() {
        // A gigantic dt makes the update blow up; the integrator must
        // report divergence rather than silently continuing.
        let mut sys = macrospin(0.01, 1e7);
        let mut integ = RungeKutta4::new(1);
        let mut m = vec![Vec3::X];
        let mut failed = false;
        for i in 0..100 {
            let t = i as f64;
            match integ.step(&mut sys, t, 1.0, &mut m) {
                Err(MagnumError::Diverged { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
                Ok(_) => {
                    // Renormalization may keep it bounded; that's fine too.
                }
            }
        }
        // Either it diverged and said so, or the projection kept |m| = 1.
        if !failed {
            assert!((m[0].norm() - 1.0).abs() < 1e-9);
        }
    }
}
