//! Heun (predictor-corrector) integrator.

use super::{axpy_range, renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::field3::Field3;
use crate::llg::LlgSystem;

/// Second-order Heun scheme.
///
/// With the thermal field frozen over the step this is the standard
/// stochastic-Heun method, converging to the Stratonovich interpretation
/// of the stochastic LLG equation — the physically correct one for
/// Brown's thermal field.
///
/// Both stages are single fused sweeps: the predictor `m + dt·k1` and the
/// corrector `m + (k1+k2)·dt/2` are applied in the RHS sweep's fuse hook
/// instead of separate full-mesh passes. The per-cell expressions are
/// unchanged, so trajectories are bitwise identical to the unfused form.
#[derive(Debug)]
pub struct Heun {
    k1: Field3,
    k2: Field3,
    predictor: Field3,
    h_scratch: Field3,
}

impl Heun {
    /// Creates a Heun integrator for `cells` cells.
    pub fn new(cells: usize) -> Self {
        Heun {
            k1: Field3::zeros(cells),
            k2: Field3::zeros(cells),
            predictor: Field3::zeros(cells),
            h_scratch: Field3::zeros(cells),
        }
    }
}

impl Integrator for Heun {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut Field3,
    ) -> Result<f64, MagnumError> {
        // Stage 1: k1 = f(t, m), fusing the predictor write. Reads use
        // unchecked `Field3Read` so the axpy loop stays branch-free and
        // vectorizable.
        {
            let pred = self.predictor.ptrs();
            let m_in = m.read_ptr();
            system.rhs_stage(&*m, t, &mut self.k1, &mut self.h_scratch, |i0, i1, k| {
                // Safety: each block fuses a disjoint cell range, and the
                // buffers behind the raw pointers outlive the sweep.
                unsafe { axpy_range(i0, i1, pred, m_in, k, dt) };
            });
        }
        // Stage 2: k2 = f(t+dt, predictor), fusing the corrector. The
        // sweep's field evaluation reads only `predictor`, so updating
        // `m` in place at the block's own range is sound.
        {
            let k1 = self.k1.read_ptr();
            let m_out = m.ptrs();
            system.rhs_stage(
                &self.predictor,
                t + dt,
                &mut self.k2,
                &mut self.h_scratch,
                |i0, i1, k| unsafe {
                    // Per-plane corrector loops, as in `axpy_range`.
                    let (mx, my, mz) = m_out.planes();
                    let (k1x, k1y, k1z) = k1.planes();
                    let (k2x, k2y, k2z) = k.planes();
                    for i in i0..i1 {
                        *mx.add(i) += (*k1x.add(i) + *k2x.add(i)) * (dt / 2.0);
                    }
                    for i in i0..i1 {
                        *my.add(i) += (*k1y.add(i) + *k2y.add(i)) * (dt / 2.0);
                    }
                    for i in i0..i1 {
                        *mz.add(i) += (*k1z.add(i) + *k2z.add(i)) * (dt / 2.0);
                    }
                },
            );
        }
        renormalize_and_check(m, &system.mask, system.full_film(), t + dt, system.par())?;
        Ok(dt)
    }

    fn name(&self) -> &'static str {
        "heun"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn converges_at_second_order() {
        let alpha = 0.1;
        let h = 1e5;
        let t_end = 40e-12;
        let expected = macrospin_analytic(alpha, h, t_end);
        let mut sys = macrospin(alpha, h);
        let mut errors = Vec::new();
        for &dt in &[2e-14, 1e-14, 5e-15] {
            let mut m = Field3::from_vec3s(&[Vec3::X]);
            let mut integ = Heun::new(1);
            let steps = (t_end / dt).round() as usize;
            let mut t = 0.0;
            for _ in 0..steps {
                integ.step(&mut sys, t, dt, &mut m).unwrap();
                t += dt;
            }
            errors.push((m.get(0) - expected).norm());
        }
        // Halving dt should cut the error by ~4 (2nd order); allow slack
        // because renormalization perturbs the asymptotics slightly.
        assert!(
            errors[0] / errors[1] > 2.5,
            "convergence ratio too low: {:?}",
            errors
        );
        assert!(errors[1] / errors[2] > 2.5);
    }

    #[test]
    fn step_returns_dt() {
        let mut sys = macrospin(0.01, 1e5);
        let mut m = Field3::from_vec3s(&[Vec3::X]);
        let taken = Heun::new(1).step(&mut sys, 0.0, 1e-14, &mut m).unwrap();
        assert_eq!(taken, 1e-14);
    }
}
