//! Heun (predictor-corrector) integrator.

use super::{renormalize_and_check, Integrator};
use crate::error::MagnumError;
use crate::llg::LlgSystem;
use crate::math::Vec3;

/// Second-order Heun scheme.
///
/// With the thermal field frozen over the step this is the standard
/// stochastic-Heun method, converging to the Stratonovich interpretation
/// of the stochastic LLG equation — the physically correct one for
/// Brown's thermal field.
#[derive(Debug)]
pub struct Heun {
    k1: Vec<Vec3>,
    k2: Vec<Vec3>,
    predictor: Vec<Vec3>,
    h_scratch: Vec<Vec3>,
}

impl Heun {
    /// Creates a Heun integrator for `cells` cells.
    pub fn new(cells: usize) -> Self {
        Heun {
            k1: vec![Vec3::ZERO; cells],
            k2: vec![Vec3::ZERO; cells],
            predictor: vec![Vec3::ZERO; cells],
            h_scratch: vec![Vec3::ZERO; cells],
        }
    }
}

impl Integrator for Heun {
    fn step(
        &mut self,
        system: &mut LlgSystem,
        t: f64,
        dt: f64,
        m: &mut [Vec3],
    ) -> Result<f64, MagnumError> {
        system.rhs(m, t, &mut self.k1, &mut self.h_scratch);
        let k1 = &self.k1;
        system
            .par()
            .for_each_chunk(&mut self.predictor, |start, chunk| {
                for (j, p) in chunk.iter_mut().enumerate() {
                    let i = start + j;
                    *p = m[i] + k1[i] * dt;
                }
            });
        system.rhs(&self.predictor, t + dt, &mut self.k2, &mut self.h_scratch);
        let k1 = &self.k1;
        let k2 = &self.k2;
        system.par().for_each_chunk(m, |start, chunk| {
            for (j, mi) in chunk.iter_mut().enumerate() {
                let i = start + j;
                *mi += (k1[i] + k2[i]) * (dt / 2.0);
            }
        });
        renormalize_and_check(m, &system.mask, t + dt, system.par())?;
        Ok(dt)
    }

    fn name(&self) -> &'static str {
        "heun"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::test_support::{macrospin, macrospin_analytic};

    #[test]
    fn converges_at_second_order() {
        let alpha = 0.1;
        let h = 1e5;
        let t_end = 40e-12;
        let expected = macrospin_analytic(alpha, h, t_end);
        let mut sys = macrospin(alpha, h);
        let mut errors = Vec::new();
        for &dt in &[2e-14, 1e-14, 5e-15] {
            let mut m = vec![Vec3::X];
            let mut integ = Heun::new(1);
            let steps = (t_end / dt).round() as usize;
            let mut t = 0.0;
            for _ in 0..steps {
                integ.step(&mut sys, t, dt, &mut m).unwrap();
                t += dt;
            }
            errors.push((m[0] - expected).norm());
        }
        // Halving dt should cut the error by ~4 (2nd order); allow slack
        // because renormalization perturbs the asymptotics slightly.
        assert!(
            errors[0] / errors[1] > 2.5,
            "convergence ratio too low: {:?}",
            errors
        );
        assert!(errors[1] / errors[2] > 2.5);
    }

    #[test]
    fn step_returns_dt() {
        let mut sys = macrospin(0.01, 1e5);
        let mut m = vec![Vec3::X];
        let taken = Heun::new(1).step(&mut sys, 0.0, 1e-14, &mut m).unwrap();
        assert_eq!(taken, 1e-14);
    }
}
