//! Batched K-way simulation advance.
//!
//! Every experiment in the paper reproduction is N nearly-identical LLG
//! runs — the 8 MAJ3 input patterns, variability sweeps, thermal
//! Monte-Carlo — and each independent run pays the full per-sweep
//! overhead (stencil tables, neighbour-presence branches, CSR offsets,
//! fork/join, FFT twiddle/spectrum loads) on its own. A
//! [`BatchedSimulation`] advances K member simulations in lockstep
//! through one K-interleaved SoA sweep ([`LlgSystem::rhs_stage_batch`]):
//! the shared geometry walk is amortized over all members and the
//! innermost member loop runs over consecutive lanes the vectorizer can
//! use.
//!
//! ## Layout and parity
//!
//! State lives in a [`FieldBatch`] (member `s` of cell `i` at flat index
//! `i·K + s`). Interleaving is a pure permutation and every per-element
//! expression — field terms, torque, stage combinations, renormalization
//! — is the exact sequence the single-system path evaluates, so each
//! member's trajectory is bitwise identical to an independent run at any
//! thread count. The one exception is the adaptive [`CashKarp45`]
//! scheme: its error estimate is a max over the *whole batch*, so all
//! members share one step-size sequence — deterministic and identical
//! across thread counts, but not equal to K independently-controlled
//! runs. Use Heun or RK4 when batch/independent parity matters.
//!
//! ## Per-member state
//!
//! Members may differ in antenna *drives* (phase-encoded logic inputs)
//! and in their thermal realization: each member keeps its own
//! [`ThermalField`] RNG stream, drawn member-by-member into a
//! per-member scratch and interleaved afterwards, so the streams never
//! interleave and match the member's independent run draw for draw.
//! Everything structural — mesh, mask, material terms, damping map, time
//! step, integrator, antenna *coverage* — must be shared; construction
//! validates what it can observe and rejects mismatches.
//!
//! [`CashKarp45`]: crate::solver::CashKarp45
//! [`ThermalField`]: crate::field::thermal::ThermalField

use crate::error::MagnumError;
use crate::excitation::Antenna;
use crate::field3::{BatchMemberView, Field3, Field3Ptr, FieldBatch};
use crate::llg::LlgSystem;
use crate::math::Vec3;
use crate::sim::Simulation;
use crate::solver::{axpy_range, renormalize_and_check_batch, IntegratorKind};

/// Shared scratch for one batched RHS stage: the interleaved base field
/// and per-member de-interleave buffers for the unfused (FFT demag)
/// pre-pass, plus the per-member per-antenna drive-field buffer
/// (refilled in place each stage, so the hot loop never allocates).
struct StageScratch {
    base: FieldBatch,
    m: Field3,
    h: Field3,
    ant: Vec<Vec<Vec3>>,
}

/// Fills `out[s]` with member `s`'s per-antenna drive fields at time
/// `t` — per member the exact expression [`LlgSystem::antenna_fields`]
/// evaluates. `out` is empty when no member has antennas.
fn fill_member_antenna_fields(antennas: &[Vec<Antenna>], t: f64, out: &mut [Vec<Vec3>]) {
    for (dst, ants) in out.iter_mut().zip(antennas) {
        for (d, a) in dst.iter_mut().zip(ants) {
            *d = a.direction() * a.drive().value(t);
        }
    }
}

/// One batched RHS stage: unfused pre-pass (one FFT plan *and* one demag
/// scratch arena — padded planes, x-major spectrum buffer, per-thread
/// row scratch — shared across members, so K runs pay for one set of
/// transform state), per-member antenna drives at the stage time, then
/// the fused K-interleaved sweep with the integrator's stage combination
/// in `fuse`.
#[allow(clippy::too_many_arguments)]
fn eval_stage<F>(
    system: &mut LlgSystem,
    y: &FieldBatch,
    t: f64,
    k_out: &mut FieldBatch,
    scratch: &mut StageScratch,
    antennas: &[Vec<Antenna>],
    thermal: &FieldBatch,
    fuse: F,
) where
    F: Fn(usize, usize, Field3Ptr) + Sync,
{
    let wrote =
        system.unfused_prepass_batch(y, t, &mut scratch.base, &mut scratch.m, &mut scratch.h);
    fill_member_antenna_fields(antennas, t, &mut scratch.ant);
    let base = if wrote { Some(&scratch.base) } else { None };
    system.rhs_stage_batch(y, k_out, base, &scratch.ant, thermal, fuse);
}

/// Batched Heun stepper — the stage fuses of [`crate::solver::Heun`]
/// applied to interleaved ranges (the axpy loops are elementwise, so they
/// run on K-interleaved planes verbatim).
struct BatchHeun {
    k1: FieldBatch,
    k2: FieldBatch,
    predictor: FieldBatch,
}

impl BatchHeun {
    fn new(cells: usize, k: usize) -> Self {
        BatchHeun {
            k1: FieldBatch::zeros(cells, k),
            k2: FieldBatch::zeros(cells, k),
            predictor: FieldBatch::zeros(cells, k),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        system: &mut LlgSystem,
        scratch: &mut StageScratch,
        antennas: &[Vec<Antenna>],
        thermal: &FieldBatch,
        t: f64,
        dt: f64,
        m: &mut FieldBatch,
    ) -> Result<f64, MagnumError> {
        // Safety for the fuse hooks: as in the single-system stepper —
        // blocks fuse disjoint interleaved ranges, no sweep writes a
        // buffer its field evaluation reads.
        {
            let pred = self.predictor.ptrs();
            let m_in = m.read_ptr();
            eval_stage(
                system,
                &*m,
                t,
                &mut self.k1,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe { axpy_range(i0, i1, pred, m_in, k, dt) },
            );
        }
        {
            let k1 = self.k1.read_ptr();
            let m_out = m.ptrs();
            eval_stage(
                system,
                &self.predictor,
                t + dt,
                &mut self.k2,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe {
                    let (mx, my, mz) = m_out.planes();
                    let (k1x, k1y, k1z) = k1.planes();
                    let (k2x, k2y, k2z) = k.planes();
                    for i in i0..i1 {
                        *mx.add(i) += (*k1x.add(i) + *k2x.add(i)) * (dt / 2.0);
                    }
                    for i in i0..i1 {
                        *my.add(i) += (*k1y.add(i) + *k2y.add(i)) * (dt / 2.0);
                    }
                    for i in i0..i1 {
                        *mz.add(i) += (*k1z.add(i) + *k2z.add(i)) * (dt / 2.0);
                    }
                },
            );
        }
        renormalize_and_check_batch(m, &system.mask, system.full_film(), t + dt, system.par())?;
        Ok(dt)
    }
}

/// Batched RK4 stepper mirroring [`crate::solver::RungeKutta4`].
struct BatchRk4 {
    k1: FieldBatch,
    k2: FieldBatch,
    k3: FieldBatch,
    stage_a: FieldBatch,
    stage_b: FieldBatch,
}

impl BatchRk4 {
    fn new(cells: usize, k: usize) -> Self {
        BatchRk4 {
            k1: FieldBatch::zeros(cells, k),
            k2: FieldBatch::zeros(cells, k),
            k3: FieldBatch::zeros(cells, k),
            stage_a: FieldBatch::zeros(cells, k),
            stage_b: FieldBatch::zeros(cells, k),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        system: &mut LlgSystem,
        scratch: &mut StageScratch,
        antennas: &[Vec<Antenna>],
        thermal: &FieldBatch,
        t: f64,
        dt: f64,
        m: &mut FieldBatch,
    ) -> Result<f64, MagnumError> {
        {
            let out = self.stage_a.ptrs();
            let m_in = m.read_ptr();
            eval_stage(
                system,
                &*m,
                t,
                &mut self.k1,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe { axpy_range(i0, i1, out, m_in, k, dt / 2.0) },
            );
        }
        {
            let out = self.stage_b.ptrs();
            let m_in = m.read_ptr();
            eval_stage(
                system,
                &self.stage_a,
                t + dt / 2.0,
                &mut self.k2,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe { axpy_range(i0, i1, out, m_in, k, dt / 2.0) },
            );
        }
        {
            let out = self.stage_a.ptrs();
            let m_in = m.read_ptr();
            eval_stage(
                system,
                &self.stage_b,
                t + dt / 2.0,
                &mut self.k3,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe { axpy_range(i0, i1, out, m_in, k, dt) },
            );
        }
        {
            let k1 = self.k1.read_ptr();
            let k2 = self.k2.read_ptr();
            let k3 = self.k3.read_ptr();
            let m_out = m.ptrs();
            eval_stage(
                system,
                &self.stage_a,
                t + dt,
                &mut self.stage_b,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| unsafe {
                    let (mx, my, mz) = m_out.planes();
                    let (k1x, k1y, k1z) = k1.planes();
                    let (k2x, k2y, k2z) = k2.planes();
                    let (k3x, k3y, k3z) = k3.planes();
                    let (k4x, k4y, k4z) = k.planes();
                    for i in i0..i1 {
                        *mx.add(i) +=
                            (*k1x.add(i) + (*k2x.add(i) + *k3x.add(i)) * 2.0 + *k4x.add(i))
                                * (dt / 6.0);
                    }
                    for i in i0..i1 {
                        *my.add(i) +=
                            (*k1y.add(i) + (*k2y.add(i) + *k3y.add(i)) * 2.0 + *k4y.add(i))
                                * (dt / 6.0);
                    }
                    for i in i0..i1 {
                        *mz.add(i) +=
                            (*k1z.add(i) + (*k2z.add(i) + *k3z.add(i)) * 2.0 + *k4z.add(i))
                                * (dt / 6.0);
                    }
                },
            );
        }
        renormalize_and_check_batch(m, &system.mask, system.full_film(), t + dt, system.par())?;
        Ok(dt)
    }
}

// Cash–Karp Butcher tableau (identical to the single-system stepper).
const A: [[f64; 5]; 5] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
    [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
    [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
    [
        1631.0 / 55296.0,
        175.0 / 512.0,
        575.0 / 13824.0,
        44275.0 / 110592.0,
        253.0 / 4096.0,
    ],
];
const C: [f64; 6] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 3.0 / 5.0, 1.0, 7.0 / 8.0];
const B5: [f64; 6] = [
    37.0 / 378.0,
    0.0,
    250.0 / 621.0,
    125.0 / 594.0,
    0.0,
    512.0 / 1771.0,
];
const B4: [f64; 6] = [
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
];

/// Batched Cash–Karp 5(4) stepper.
///
/// The embedded error estimate is the max-norm over *all* members, so
/// the controller drives one shared step-size sequence for the whole
/// batch (see the module docs for the parity caveat).
struct BatchCashKarp {
    tolerance: f64,
    suggested: Option<f64>,
    k: [FieldBatch; 6],
    stage_a: FieldBatch,
    stage_b: FieldBatch,
    y5: FieldBatch,
}

impl BatchCashKarp {
    fn new(cells: usize, k: usize, tolerance: f64) -> Self {
        BatchCashKarp {
            tolerance: tolerance.max(1e-14),
            suggested: None,
            k: std::array::from_fn(|_| FieldBatch::zeros(cells, k)),
            stage_a: FieldBatch::zeros(cells, k),
            stage_b: FieldBatch::zeros(cells, k),
            y5: FieldBatch::zeros(cells, k),
        }
    }

    /// Evaluates the six stages and returns the batch-wide max-norm
    /// error estimate (exact `f64::max` fold, thread-count independent).
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        system: &mut LlgSystem,
        scratch: &mut StageScratch,
        antennas: &[Vec<Antenna>],
        thermal: &FieldBatch,
        t: f64,
        dt: f64,
        m: &FieldBatch,
    ) -> f64 {
        let m_r = m.read_ptr();
        for s in 0..6 {
            let (head, tail) = self.k.split_at_mut(s);
            let head_r: Vec<_> = head.iter().map(|kb| kb.read_ptr()).collect();
            let k_out = &mut tail[0];
            let (y, out): (&FieldBatch, _) = match s {
                0 => (m, self.stage_a.ptrs()),
                _ if s % 2 == 1 => (&self.stage_a, self.stage_b.ptrs()),
                _ => (&self.stage_b, self.stage_a.ptrs()),
            };
            let ts = if s == 0 { t } else { t + C[s] * dt };
            // Safety: as in the single-system stepper — disjoint
            // interleaved index sets per block, read buffers not mutated
            // during the sweep.
            eval_stage(
                system,
                y,
                ts,
                k_out,
                scratch,
                antennas,
                thermal,
                |i0, i1, k| {
                    if s == 5 {
                        return;
                    }
                    for i in i0..i1 {
                        let mut acc = unsafe { m_r.get(i) };
                        for (jj, kb) in head_r.iter().enumerate() {
                            acc += unsafe { kb.get(i) } * (A[s][jj] * dt);
                        }
                        acc += unsafe { k.read(i) } * (A[s][s] * dt);
                        unsafe { out.write(i, acc) };
                    }
                },
            );
        }
        let total = m.cells() * m.k();
        let team = system.par();
        let nb = team.threads().max(1);
        let k = &self.k;
        let md = m.data();
        let out = self.y5.ptrs();
        let partials = team.map_blocks(|b| {
            let (start, end) = crate::par::chunk_bounds(total, nb, b);
            let mut err: f64 = 0.0;
            for i in start..end {
                let mut y5 = md.get(i);
                let mut y4 = md.get(i);
                for (s, kb) in k.iter().enumerate() {
                    let ks = kb.data().get(i);
                    y5 += ks * (B5[s] * dt);
                    y4 += ks * (B4[s] * dt);
                }
                // Safety: chunk ranges are disjoint across blocks.
                unsafe { out.write(i, y5) };
                err = err.max((y5 - y4).norm());
            }
            err
        });
        partials.into_iter().fold(0.0, f64::max)
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        system: &mut LlgSystem,
        scratch: &mut StageScratch,
        antennas: &[Vec<Antenna>],
        thermal: &FieldBatch,
        t: f64,
        dt: f64,
        m: &mut FieldBatch,
    ) -> Result<f64, MagnumError> {
        let mut h = self.suggested.map_or(dt, |s| s.min(dt));
        let min_step = dt * 1e-6;
        loop {
            let err = self.attempt(system, scratch, antennas, thermal, t, h, m);
            if !err.is_finite() {
                h *= 0.1;
                if h < min_step {
                    return Err(MagnumError::Diverged { time: t });
                }
                continue;
            }
            if err <= self.tolerance {
                m.data_mut().copy_from(self.y5.data());
                renormalize_and_check_batch(
                    m,
                    &system.mask,
                    system.full_film(),
                    t + h,
                    system.par(),
                )?;
                let factor = if err == 0.0 {
                    5.0
                } else {
                    (0.9 * (self.tolerance / err).powf(0.2)).clamp(0.2, 5.0)
                };
                self.suggested = Some((h * factor).min(dt));
                return Ok(h);
            }
            let factor = (0.9 * (self.tolerance / err).powf(0.25)).clamp(0.1, 0.9);
            h *= factor;
            if h < min_step {
                return Err(MagnumError::StepSizeUnderflow { time: t });
            }
        }
    }
}

/// Integrator dispatch for the batch path.
enum BatchStepper {
    Heun(BatchHeun),
    Rk4(BatchRk4),
    // Boxed: the Cash-Karp state (error planes + controller) is ~2x the
    // other variants; keep the enum small for the common fixed-step case.
    CashKarp(Box<BatchCashKarp>),
}

impl BatchStepper {
    fn new(kind: IntegratorKind, cells: usize, k: usize) -> Self {
        match kind {
            IntegratorKind::Heun => BatchStepper::Heun(BatchHeun::new(cells, k)),
            IntegratorKind::RungeKutta4 => BatchStepper::Rk4(BatchRk4::new(cells, k)),
            IntegratorKind::CashKarp45 { tolerance } => {
                BatchStepper::CashKarp(Box::new(BatchCashKarp::new(cells, k, tolerance)))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        system: &mut LlgSystem,
        scratch: &mut StageScratch,
        antennas: &[Vec<Antenna>],
        thermal: &FieldBatch,
        t: f64,
        dt: f64,
        m: &mut FieldBatch,
    ) -> Result<f64, MagnumError> {
        match self {
            BatchStepper::Heun(s) => s.step(system, scratch, antennas, thermal, t, dt, m),
            BatchStepper::Rk4(s) => s.step(system, scratch, antennas, thermal, t, dt, m),
            BatchStepper::CashKarp(s) => s.step(system, scratch, antennas, thermal, t, dt, m),
        }
    }
}

/// K same-geometry simulations advanced in lockstep through one batched
/// sweep per integrator stage (see the module docs).
///
/// Built from K [`Simulation`]s via [`BatchedSimulation::new`]; member
/// 0's [`LlgSystem`] hosts the shared kernel, worker team and field
/// terms for the whole batch. Recover the members (with state written
/// back) via [`BatchedSimulation::into_members`].
pub struct BatchedSimulation {
    sims: Vec<Simulation>,
    /// Per-member antennas (cloned out of the members so stage
    /// evaluation does not alias the host system borrow).
    member_antennas: Vec<Vec<Antenna>>,
    m: FieldBatch,
    /// K-interleaved thermal realization for the current step (empty at
    /// T = 0).
    thermal: FieldBatch,
    /// Per-member draw buffer: each member's own RNG stream writes here
    /// before interleaving, so streams never mix.
    thermal_scratch: Vec<Vec3>,
    stepper: BatchStepper,
    scratch: StageScratch,
    has_thermal: bool,
    time: f64,
    dt: f64,
}

impl BatchedSimulation {
    /// Assembles a batch from K member simulations.
    ///
    /// Members must share everything structural: mesh (dimensions and
    /// mask), damping map, gyromagnetic ratio, time step, clock,
    /// integrator choice, thermal on/off, and antenna *coverage* (cell
    /// sets and field axes — drives may differ, that is the point).
    /// Field terms are taken from member 0 and must be identical across
    /// members (same material and demag choice); this is the caller's
    /// contract, as terms are not introspectable.
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidConfig`] for an empty batch or any
    /// observable mismatch.
    pub fn new(sims: Vec<Simulation>) -> Result<Self, MagnumError> {
        let invalid = |reason: String| MagnumError::InvalidConfig { reason };
        if sims.is_empty() {
            return Err(invalid("batch needs at least one member".into()));
        }
        let k = sims.len();
        let host = &sims[0];
        let n = host.mesh().cell_count();
        for (s, sim) in sims.iter().enumerate().skip(1) {
            if sim.mesh().nx() != host.mesh().nx() || sim.mesh().ny() != host.mesh().ny() {
                return Err(invalid(format!("member {s}: mesh dimensions differ")));
            }
            if sim.mesh().mask() != host.mesh().mask() {
                return Err(invalid(format!("member {s}: geometry mask differs")));
            }
            if sim.system_ref().alpha != host.system_ref().alpha {
                return Err(invalid(format!("member {s}: damping map differs")));
            }
            if sim.system_ref().gamma != host.system_ref().gamma {
                return Err(invalid(format!("member {s}: gyromagnetic ratio differs")));
            }
            if sim.time_step() != host.time_step() {
                return Err(invalid(format!("member {s}: time step differs")));
            }
            if sim.time() != host.time() {
                return Err(invalid(format!("member {s}: clock differs")));
            }
            if sim.integrator_kind() != host.integrator_kind() {
                return Err(invalid(format!("member {s}: integrator differs")));
            }
            if sim.has_thermal() != host.has_thermal() {
                return Err(invalid(format!("member {s}: thermal on/off differs")));
            }
            let (a, b) = (&sim.system_ref().antennas, &host.system_ref().antennas);
            if a.len() != b.len() {
                return Err(invalid(format!("member {s}: antenna count differs")));
            }
            for (ai, (x, y)) in a.iter().zip(b).enumerate() {
                if x.cells() != y.cells() || x.direction() != y.direction() {
                    return Err(invalid(format!(
                        "member {s}: antenna {ai} coverage differs (cell sets and field \
                         axes must be shared; only drives may vary across the batch)"
                    )));
                }
            }
        }

        let member_antennas: Vec<Vec<Antenna>> = sims
            .iter()
            .map(|sim| sim.system_ref().antennas.clone())
            .collect();
        let mut m = FieldBatch::zeros(n, k);
        for (s, sim) in sims.iter().enumerate() {
            m.load_member(s, sim.magnetization());
        }
        let has_thermal = host.has_thermal();
        let thermal = if has_thermal {
            FieldBatch::zeros(n, k)
        } else {
            FieldBatch::empty(k)
        };
        let thermal_scratch = if has_thermal {
            vec![Vec3::ZERO; n]
        } else {
            Vec::new()
        };
        let n_ant = host.system_ref().antennas.len();
        let ant = if n_ant == 0 {
            Vec::new()
        } else {
            vec![vec![Vec3::ZERO; n_ant]; k]
        };
        let scratch = if host.system_ref().has_unfused() {
            StageScratch {
                base: FieldBatch::zeros(n, k),
                m: Field3::zeros(n),
                h: Field3::zeros(n),
                ant,
            }
        } else {
            StageScratch {
                base: FieldBatch::empty(k),
                m: Field3::zeros(0),
                h: Field3::zeros(0),
                ant,
            }
        };
        let stepper = BatchStepper::new(host.integrator_kind(), n, k);
        let time = host.time();
        let dt = host.time_step();
        Ok(BatchedSimulation {
            sims,
            member_antennas,
            m,
            thermal,
            thermal_scratch,
            stepper,
            scratch,
            has_thermal,
            time,
            dt,
        })
    }

    /// Batch width K.
    pub fn k(&self) -> usize {
        self.sims.len()
    }

    /// Current simulation time in seconds (shared by all members).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The fixed time step in seconds.
    pub fn time_step(&self) -> f64 {
        self.dt
    }

    /// The worker-thread count of the shared engine.
    pub fn threads(&self) -> usize {
        self.sims[0].threads()
    }

    /// Read-only view of member `s`'s magnetization (usable wherever a
    /// [`crate::MagRead`] is accepted — probes, snapshots).
    pub fn member(&self, s: usize) -> BatchMemberView<'_> {
        self.m.member(s)
    }

    /// Member `s`'s simulation (mesh, material, probes geometry). Its
    /// magnetization and clock are only current after
    /// [`BatchedSimulation::sync_members`].
    pub fn member_sim(&self, s: usize) -> &Simulation {
        &self.sims[s]
    }

    /// Writes the batch state (magnetization, clock) back into every
    /// member simulation.
    pub fn sync_members(&mut self) {
        for (s, sim) in self.sims.iter_mut().enumerate() {
            self.m.store_member(s, sim.magnetization_mut());
            sim.set_time_internal(self.time);
        }
    }

    /// Dissolves the batch, returning the member simulations with their
    /// final state written back.
    pub fn into_members(mut self) -> Vec<Simulation> {
        self.sync_members();
        self.sims
    }

    /// Advances all members by exactly one time step.
    ///
    /// # Errors
    ///
    /// Propagates integrator failures ([`MagnumError::Diverged`],
    /// [`MagnumError::StepSizeUnderflow`]).
    pub fn step(&mut self) -> Result<(), MagnumError> {
        if self.has_thermal {
            // Draw each member's realization from its own generator into
            // the member-shaped scratch, then interleave: the same
            // ascending-cell draw sequence as the member's independent
            // run, stream by stream.
            for s in 0..self.sims.len() {
                let thermal = self.sims[s]
                    .thermal_field_mut()
                    .expect("thermal presence validated at construction");
                thermal.draw(self.dt, &mut self.thermal_scratch);
                self.thermal.load_member(s, &self.thermal_scratch[..]);
            }
        }
        let system = self.sims[0].system_mut();
        let taken = self.stepper.step(
            system,
            &mut self.scratch,
            &self.member_antennas,
            &self.thermal,
            self.time,
            self.dt,
            &mut self.m,
        )?;
        self.time += taken;
        Ok(())
    }

    /// Runs for `duration` seconds (rounded up to whole steps).
    ///
    /// # Errors
    ///
    /// Propagates the first step failure.
    pub fn run(&mut self, duration: f64) -> Result<(), MagnumError> {
        let t_end = self.time + duration;
        while self.time < t_end - 1e-21 {
            self.step()?;
        }
        Ok(())
    }

    /// Runs for `duration` seconds, invoking `observer` every
    /// `sample_interval` seconds of simulated time (and once at the
    /// start) — the batch analogue of [`Simulation::run_sampled`], with
    /// the identical sample schedule.
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidConfig`] for a non-positive sample
    /// interval, and propagates the first step failure.
    pub fn run_sampled<F>(
        &mut self,
        duration: f64,
        sample_interval: f64,
        mut observer: F,
    ) -> Result<(), MagnumError>
    where
        F: FnMut(f64, &BatchedSimulation),
    {
        if !(sample_interval.is_finite() && sample_interval > 0.0) {
            return Err(MagnumError::InvalidConfig {
                reason: format!(
                    "sample interval must be positive and finite, got {sample_interval}"
                ),
            });
        }
        let t0 = self.time;
        let t_end = t0 + duration;
        let mut taken: u64 = 0;
        while self.time < t_end - 1e-21 {
            if self.time >= t0 + taken as f64 * sample_interval - 1e-21 {
                observer(self.time, self);
                taken += 1;
            }
            self.step()?;
        }
        if taken == 0 || t0 + taken as f64 * sample_interval <= t_end + 1e-21 {
            observer(self.time, self);
        }
        Ok(())
    }
}

impl std::fmt::Debug for BatchedSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedSimulation")
            .field("k", &self.k())
            .field("cells", &self.m.cells())
            .field("time", &self.time)
            .field("dt", &self.dt)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damping::AbsorbingFrame;
    use crate::excitation::Drive;
    use crate::field::demag::DemagMethod;
    use crate::material::Material;
    use crate::mesh::Mesh;
    use crate::sim::SimulationBuilder;

    const CELL: f64 = 5e-9;

    fn driven_sim(phase: f64, threads: usize) -> SimulationBuilder {
        let mesh = Mesh::new(16, 8, [CELL, CELL, 1e-9]).unwrap();
        let antenna = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            2.0 * CELL,
            8.0 * CELL,
            Vec3::X,
            Drive::logic_cw(3e3, 9e9, phase),
        );
        Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::Z)
            .demag(DemagMethod::ThinFilmLocal)
            .absorbing_frame(AbsorbingFrame::new(2, 0.5))
            .antenna(antenna)
            .threads(threads)
            .min_cells_per_thread(0)
    }

    fn collect(sim: &Simulation) -> Vec<Vec3> {
        sim.magnetization().to_vec()
    }

    #[test]
    fn batched_rk4_matches_independent_runs_bitwise() {
        let phases = [0.0, std::f64::consts::PI, 1.3];
        let steps = 8;
        for threads in [1, 2, 4] {
            let independent: Vec<Vec<Vec3>> = phases
                .iter()
                .map(|&p| {
                    let mut sim = driven_sim(p, threads).build().unwrap();
                    for _ in 0..steps {
                        sim.step().unwrap();
                    }
                    collect(&sim)
                })
                .collect();
            let sims: Vec<Simulation> = phases
                .iter()
                .map(|&p| driven_sim(p, threads).build().unwrap())
                .collect();
            let mut batch = BatchedSimulation::new(sims).unwrap();
            for _ in 0..steps {
                batch.step().unwrap();
            }
            let members = batch.into_members();
            for (s, sim) in members.iter().enumerate() {
                assert_eq!(
                    collect(sim),
                    independent[s],
                    "member {s} diverged from its independent run at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn batched_thermal_heun_keeps_rng_streams_separate() {
        let seeds = [3u64, 17, 29, 91];
        let steps = 6;
        let build = |seed: u64| {
            let mesh = Mesh::new(12, 6, [CELL, CELL, 1e-9]).unwrap();
            Simulation::builder(mesh, Material::fecob())
                .uniform_magnetization(Vec3::Z)
                .temperature(300.0)
                .seed(seed)
                .build()
                .unwrap()
        };
        let independent: Vec<Vec<Vec3>> = seeds
            .iter()
            .map(|&seed| {
                let mut sim = build(seed);
                for _ in 0..steps {
                    sim.step().unwrap();
                }
                collect(&sim)
            })
            .collect();
        let mut batch = BatchedSimulation::new(seeds.iter().map(|&s| build(s)).collect()).unwrap();
        for _ in 0..steps {
            batch.step().unwrap();
        }
        let members = batch.into_members();
        for (s, sim) in members.iter().enumerate() {
            assert_eq!(
                collect(sim),
                independent[s],
                "member {s} (seed {}) diverged — RNG streams interleaved?",
                seeds[s]
            );
        }
        // Different seeds must produce different trajectories (the test
        // would be vacuous if all members drew the same noise).
        assert_ne!(independent[0], independent[1]);
    }

    #[test]
    fn batched_newell_demag_matches_independent_runs() {
        let build = |phase: f64| {
            driven_sim(phase, 1)
                .demag(DemagMethod::NewellFft)
                .build()
                .unwrap()
        };
        let steps = 4;
        let phases = [0.0, std::f64::consts::PI];
        let independent: Vec<Vec<Vec3>> = phases
            .iter()
            .map(|&p| {
                let mut sim = build(p);
                for _ in 0..steps {
                    sim.step().unwrap();
                }
                collect(&sim)
            })
            .collect();
        let mut batch = BatchedSimulation::new(phases.iter().map(|&p| build(p)).collect()).unwrap();
        for _ in 0..steps {
            batch.step().unwrap();
        }
        let members = batch.into_members();
        for (s, sim) in members.iter().enumerate() {
            assert_eq!(collect(sim), independent[s], "member {s} diverged");
        }
    }

    #[test]
    fn run_and_sync_write_back_time_and_state() {
        let sims: Vec<Simulation> = (0..2)
            .map(|_| driven_sim(0.0, 1).build().unwrap())
            .collect();
        let dt = sims[0].time_step();
        let mut batch = BatchedSimulation::new(sims).unwrap();
        batch.run(dt * 3.0).unwrap();
        assert!((batch.time() - 3.0 * dt).abs() < 1e-21);
        let members = batch.into_members();
        for sim in &members {
            assert!((sim.time() - 3.0 * dt).abs() < 1e-21);
        }
    }

    #[test]
    fn mismatched_members_are_rejected() {
        // Different time steps.
        let a = driven_sim(0.0, 1).build().unwrap();
        let mut b = driven_sim(0.0, 1).build().unwrap();
        b.set_time_step(a.time_step() * 0.5).unwrap();
        assert!(BatchedSimulation::new(vec![a, b]).is_err());
        // Different antenna coverage.
        let a = driven_sim(0.0, 1).build().unwrap();
        let mesh = Mesh::new(16, 8, [CELL, CELL, 1e-9]).unwrap();
        let other = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            4.0 * CELL,
            8.0 * CELL,
            Vec3::X,
            Drive::logic_cw(3e3, 9e9, 0.0),
        );
        let b = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::Z)
            .demag(DemagMethod::ThinFilmLocal)
            .absorbing_frame(AbsorbingFrame::new(2, 0.5))
            .antenna(other)
            .build()
            .unwrap();
        assert!(BatchedSimulation::new(vec![a, b]).is_err());
        // Empty batch.
        assert!(BatchedSimulation::new(Vec::new()).is_err());
    }

    #[test]
    fn observer_sees_member_views_with_the_sample_schedule() {
        let sims: Vec<Simulation> = (0..2)
            .map(|_| driven_sim(0.0, 1).build().unwrap())
            .collect();
        let dt = sims[0].time_step();
        let mut batch = BatchedSimulation::new(sims).unwrap();
        let mut calls = 0;
        batch
            .run_sampled(dt * 10.0, dt * 2.0, |_, b| {
                calls += 1;
                // Member views are live during sampling.
                let v = crate::MagRead::at(&b.member(1), 0);
                assert!(v.is_finite());
            })
            .unwrap();
        assert_eq!(calls, 6);
    }
}
