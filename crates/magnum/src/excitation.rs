//! Spin-wave excitation antennas.
//!
//! An [`Antenna`] models the field footprint of a transducer (microstrip
//! antenna, magnetoelectric cell, spin-orbit-torque line — §III-A lists
//! the options): a localized region where a time-dependent magnetic field
//! drives the magnetization. Phase-encoded logic inputs are realized by
//! driving with phase 0 (logic 0) or π (logic 1), exactly as in the
//! paper's §III-A step (i).

use crate::math::Vec3;
use crate::mesh::Mesh;

/// Time-dependent drive waveform of an antenna.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drive {
    /// Continuous sinusoid `A·sin(2πft + φ)`, optionally soft-started
    /// over `ramp` seconds to avoid broadband transients.
    ContinuousWave {
        /// Peak field amplitude in A/m.
        amplitude: f64,
        /// Frequency in Hz.
        frequency: f64,
        /// Phase offset in radians (0 encodes logic 0, π logic 1).
        phase: f64,
        /// Soft-start duration in seconds (0 for a hard start).
        ramp: f64,
    },
    /// Finite burst: the continuous wave gated to `[start, start + duration]`
    /// with raised-cosine edges of length `ramp` inside the window.
    Burst {
        /// Peak field amplitude in A/m.
        amplitude: f64,
        /// Frequency in Hz.
        frequency: f64,
        /// Phase offset in radians.
        phase: f64,
        /// Burst start time in seconds.
        start: f64,
        /// Burst duration in seconds.
        duration: f64,
        /// Edge ramp time in seconds.
        ramp: f64,
    },
    /// Broadband `A·sinc(2π·f_c·(t − t₀))` pulse for dispersion
    /// spectroscopy (uniform spectral density up to `cutoff`).
    Sinc {
        /// Peak field amplitude in A/m.
        amplitude: f64,
        /// Spectral cutoff frequency in Hz.
        cutoff: f64,
        /// Pulse centre time in seconds.
        center: f64,
    },
}

impl Drive {
    /// Convenience constructor for the gate drive used throughout the
    /// paper: a continuous wave with a quarter-period soft start.
    pub fn logic_cw(amplitude: f64, frequency: f64, phase: f64) -> Drive {
        Drive::ContinuousWave {
            amplitude,
            frequency,
            phase,
            ramp: 0.25 / frequency,
        }
    }

    /// Instantaneous scalar field value at time `t` (seconds), in A/m.
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Drive::ContinuousWave {
                amplitude,
                frequency,
                phase,
                ramp,
            } => {
                if t < 0.0 {
                    return 0.0;
                }
                let envelope = if ramp > 0.0 && t < ramp {
                    let x = t / ramp;
                    0.5 * (1.0 - (std::f64::consts::PI * x).cos())
                } else {
                    1.0
                };
                envelope * amplitude * (2.0 * std::f64::consts::PI * frequency * t + phase).sin()
            }
            Drive::Burst {
                amplitude,
                frequency,
                phase,
                start,
                duration,
                ramp,
            } => {
                let tau = t - start;
                if tau < 0.0 || tau > duration {
                    return 0.0;
                }
                let envelope = if ramp > 0.0 && tau < ramp {
                    let x = tau / ramp;
                    0.5 * (1.0 - (std::f64::consts::PI * x).cos())
                } else if ramp > 0.0 && tau > duration - ramp {
                    let x = (duration - tau) / ramp;
                    0.5 * (1.0 - (std::f64::consts::PI * x).cos())
                } else {
                    1.0
                };
                envelope * amplitude * (2.0 * std::f64::consts::PI * frequency * t + phase).sin()
            }
            Drive::Sinc {
                amplitude,
                cutoff,
                center,
            } => {
                let x = 2.0 * std::f64::consts::PI * cutoff * (t - center);
                if x.abs() < 1e-12 {
                    amplitude
                } else {
                    amplitude * x.sin() / x
                }
            }
        }
    }
}

/// A localized excitation region with a drive waveform and field axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Antenna {
    cells: Vec<usize>,
    direction: Vec3,
    drive: Drive,
}

impl Antenna {
    /// Creates an antenna over explicit flattened cell indices.
    ///
    /// The drive field points along `direction` (normalized internally);
    /// for forward-volume waves with m ∥ ẑ an in-plane axis (x̂ or ŷ) is
    /// the natural choice, matching a microstrip's Oersted field.
    pub fn new(cells: Vec<usize>, direction: Vec3, drive: Drive) -> Self {
        Antenna {
            cells,
            direction: direction.normalized(),
            drive,
        }
    }

    /// Creates an antenna covering every magnetic cell whose centre lies
    /// within the rectangle `[x0, x1] × [y0, y1]` (metres).
    pub fn over_rect(
        mesh: &Mesh,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        direction: Vec3,
        drive: Drive,
    ) -> Self {
        let mut cells = Vec::new();
        for (ix, iy) in mesh.magnetic_cells() {
            let (x, y) = mesh.cell_center(ix, iy);
            if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                cells.push(mesh.linear_index(ix, iy));
            }
        }
        Antenna::new(cells, direction, drive)
    }

    /// The flattened indices of driven cells.
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// The (normalized) field axis.
    pub fn direction(&self) -> Vec3 {
        self.direction
    }

    /// The drive waveform.
    pub fn drive(&self) -> &Drive {
        &self.drive
    }

    /// Adds the antenna field at time `t` into the field buffer.
    pub fn accumulate(&self, t: f64, h: &mut [Vec3]) {
        let v = self.drive.value(t);
        if v == 0.0 {
            return;
        }
        let field = self.direction * v;
        for &c in &self.cells {
            h[c] += field;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn cw_respects_phase_encoding() {
        let f = 10e9;
        let d0 = Drive::ContinuousWave {
            amplitude: 1.0,
            frequency: f,
            phase: 0.0,
            ramp: 0.0,
        };
        let d1 = Drive::ContinuousWave {
            amplitude: 1.0,
            frequency: f,
            phase: PI,
            ramp: 0.0,
        };
        // A π phase shift inverts the waveform.
        for i in 1..20 {
            let t = i as f64 * 7.3e-12;
            assert!((d0.value(t) + d1.value(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn cw_ramp_starts_at_zero_and_reaches_full_amplitude() {
        let f = 10e9;
        let ramp = 0.25 / f;
        let d = Drive::logic_cw(2.0, f, PI / 2.0);
        assert_eq!(d.value(-1e-12), 0.0);
        assert!(d.value(0.0).abs() < 1e-9, "soft start must begin at zero");
        // Well past the ramp, peak amplitude is reached: sample a period.
        let mut peak: f64 = 0.0;
        for i in 0..1000 {
            let t = 10.0 * ramp + i as f64 * 1e-13;
            peak = peak.max(d.value(t).abs());
        }
        assert!((peak - 2.0).abs() < 1e-2, "peak = {peak}");
    }

    #[test]
    fn burst_is_silent_outside_window() {
        let d = Drive::Burst {
            amplitude: 1.0,
            frequency: 10e9,
            phase: 0.0,
            start: 1e-9,
            duration: 100e-12,
            ramp: 10e-12,
        };
        assert_eq!(d.value(0.5e-9), 0.0);
        assert_eq!(d.value(1.2e-9), 0.0);
        let mut nonzero = false;
        for i in 0..100 {
            if d.value(1e-9 + i as f64 * 1e-12).abs() > 1e-3 {
                nonzero = true;
                break;
            }
        }
        assert!(nonzero, "burst must be active inside its window");
    }

    #[test]
    fn sinc_peaks_at_center() {
        let d = Drive::Sinc {
            amplitude: 3.0,
            cutoff: 20e9,
            center: 1e-10,
        };
        assert!((d.value(1e-10) - 3.0).abs() < 1e-9);
        assert!(d.value(0.0).abs() < 3.0);
    }

    #[test]
    fn antenna_drives_only_its_cells() {
        let _mesh = Mesh::new(8, 1, [5e-9, 5e-9, 1e-9]).unwrap();
        let ant = Antenna::new(
            vec![2, 3],
            Vec3::X,
            Drive::ContinuousWave {
                amplitude: 1.0,
                frequency: 10e9,
                phase: PI / 2.0,
                ramp: 0.0,
            },
        );
        let mut h = vec![Vec3::ZERO; 8];
        ant.accumulate(0.0, &mut h); // sin(φ=π/2) = 1 at t=0
        assert!((h[2].x - 1.0).abs() < 1e-12);
        assert!((h[3].x - 1.0).abs() < 1e-12);
        assert_eq!(h[0], Vec3::ZERO);
        assert_eq!(h[4], Vec3::ZERO);
    }

    #[test]
    fn over_rect_selects_expected_cells() {
        let mesh = Mesh::new(10, 4, [1e-9, 1e-9, 1e-9]).unwrap();
        let ant = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            2e-9,
            4e-9,
            Vec3::X,
            Drive::logic_cw(1.0, 10e9, 0.0),
        );
        // Cells with centre x in [0, 2e-9]: ix = 0, 1 across all 4 rows.
        assert_eq!(ant.cells().len(), 8);
    }

    #[test]
    fn over_rect_skips_vacuum() {
        let mut mesh = Mesh::new(4, 1, [1e-9, 1e-9, 1e-9]).unwrap();
        mesh.set_magnetic(0, 0, false);
        let ant = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            4e-9,
            1e-9,
            Vec3::X,
            Drive::logic_cw(1.0, 10e9, 0.0),
        );
        assert_eq!(ant.cells().len(), 3);
    }

    #[test]
    fn direction_is_normalized() {
        let ant = Antenna::new(
            vec![0],
            Vec3::new(0.0, 0.0, 5.0),
            Drive::logic_cw(1.0, 1.0, 0.0),
        );
        assert!((ant.direction().norm() - 1.0).abs() < 1e-15);
    }
}
