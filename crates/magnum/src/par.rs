//! Intra-simulation data parallelism: a persistent worker team.
//!
//! One simulation owns one [`WorkerTeam`]. The team holds `threads - 1`
//! parked OS threads; every parallel region (the fused RHS-plus-stage
//! sweep, renormalization, `max_torque` reduction, FFT batches) publishes
//! a job, wakes the workers, runs block 0 on the calling thread and blocks
//! until every worker has finished its block. With `threads == 1` no
//! threads are spawned and jobs run inline on the caller, so the serial
//! path has zero synchronization overhead.
//!
//! Determinism contract: blocks are contiguous, disjoint index ranges and
//! every per-cell computation depends only on the cell (never on the block
//! partition), so results are bitwise identical for any thread count.
//! Reductions return one partial per block, combined in block order.
//! Since the SoA refactor, block jobs read and write the state through
//! per-component plane slices ([`crate::Field3`]); the layout is a pure
//! permutation of the same `f64` values, so the contract carries over
//! unchanged — disjoint cell indices are disjoint in every plane.
//!
//! The module is `std`-only: `Mutex` + `Condvar` for the rendezvous, a
//! lifetime-erased job pointer for the closure hand-off (the caller blocks
//! inside [`WorkerTeam::run`] until all workers are done, so the borrow
//! outlives every use). All `unsafe` in the crate's parallel engine is
//! confined to this module.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Hard ceiling on the configured thread count, protecting against absurd
/// `MAGNUM_THREADS` values. Well above any machine this targets.
pub const MAX_THREADS: usize = 1024;

/// Number of logical CPUs, used when thread count `0` ("auto") is requested.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the effective thread count from an explicit builder request and
/// the `MAGNUM_THREADS` environment value (the explicit request wins).
///
/// A count of `0` (either source) means "auto": all logical CPUs. With
/// neither source set the default is 1 — serial, so batch drivers that
/// parallelize across simulations are not oversubscribed by default.
///
/// # Errors
///
/// Returns a human-readable message when the environment value is not a
/// non-negative integer.
pub fn resolve_threads(explicit: Option<usize>, env: Option<&str>) -> Result<usize, String> {
    let requested = match explicit {
        Some(n) => Some(n),
        None => match env.map(str::trim) {
            Some("") | None => None,
            Some(s) => Some(s.parse::<usize>().map_err(|_| {
                format!("MAGNUM_THREADS must be a non-negative integer, got {s:?}")
            })?),
        },
    };
    Ok(match requested {
        Some(0) => auto_threads().min(MAX_THREADS),
        Some(n) => n.min(MAX_THREADS),
        None => 1,
    })
}

/// Default minimum number of cells each worker thread must have before a
/// second thread pays off.
///
/// Below this, the per-sweep rendezvous (publish + wake + join, a few µs)
/// costs more than the cells it offloads save: BENCH_rhs.json shows the
/// parallel path *losing* to serial at 4096–65536 cells on a machine
/// where threads contend for cores. Grids under
/// `threads * MIN_CELLS_PER_THREAD` cells therefore take the serial arm
/// unless the caller explicitly opts out via
/// [`crate::SimulationBuilder::min_cells_per_thread`].
pub const MIN_CELLS_PER_THREAD: usize = 65_536;

/// Clamps a requested thread count so every thread keeps at least
/// `min_cells_per_thread` cells. `min_cells_per_thread == 0` disables the
/// clamp (the explicit "I know what I'm doing" escape hatch used by
/// thread-parity tests, which oversubscribe tiny grids on purpose).
pub fn effective_threads(requested: usize, cells: usize, min_cells_per_thread: usize) -> usize {
    let requested = requested.clamp(1, MAX_THREADS);
    if min_cells_per_thread == 0 {
        return requested;
    }
    requested.min((cells / min_cells_per_thread).max(1))
}

/// Bounds `[start, end)` of chunk `b` when `n` items are split into `nb`
/// contiguous chunks of near-equal size.
pub fn chunk_bounds(n: usize, nb: usize, b: usize) -> (usize, usize) {
    debug_assert!(b < nb);
    (b * n / nb, (b + 1) * n / nb)
}

/// A raw pointer that may cross thread boundaries. Used to hand each block
/// a disjoint region of one output buffer; callers must guarantee that no
/// two blocks touch the same index.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped base pointer.
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }

    /// Pointer to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the original allocation, and no other
    /// thread may access the same element concurrently.
    pub(crate) unsafe fn add(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Lifetime-erased pointer to the job closure currently being executed.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for JobPtr {}

struct Control {
    job: Option<JobPtr>,
    /// Incremented once per published job; workers use it to detect work.
    epoch: u64,
    /// Workers still running the current job.
    remaining: usize,
    shutdown: bool,
    /// Set when any worker's job closure panicked.
    panicked: bool,
}

struct Shared {
    control: Mutex<Control>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes whole parallel regions: `run` takes `&self`, so two
    /// threads sharing a team must not interleave job publications.
    region: Mutex<()>,
}

/// Persistent team of worker threads executing block-parallel jobs
/// (see module docs).
pub struct WorkerTeam {
    threads: usize,
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerTeam {
    /// Creates a team that runs jobs across `threads` blocks. `threads`
    /// below 2 runs everything inline on the caller with no spawned
    /// threads.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        if threads == 1 {
            return WorkerTeam {
                threads,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                job: None,
                epoch: 0,
                remaining: 0,
                shutdown: false,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            region: Mutex::new(()),
        });
        let handles = (1..threads)
            .map(|block| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("magnum-worker-{block}"))
                    .spawn(move || worker_loop(&shared, block))
                    .expect("failed to spawn magnum worker thread")
            })
            .collect();
        WorkerTeam {
            threads,
            shared: Some(shared),
            handles,
        }
    }

    /// The number of blocks every job is split into (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(block)` for every block in `0..threads()`, block 0 on the
    /// calling thread, and returns when all blocks are done.
    ///
    /// # Panics
    ///
    /// Re-raises the caller-block panic, or panics with a generic message
    /// if a worker block panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared.as_ref() else {
            job(0);
            return;
        };
        // A panic re-raised at the end of a previous region poisons this
        // lock; the team state is still consistent, so keep going.
        let _region = shared
            .region
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        {
            let mut ctl = shared.control.lock().unwrap();
            // Erase the borrow lifetime: `run` blocks below until every
            // worker has finished with the pointer.
            let ptr: *const (dyn Fn(usize) + Sync) = job;
            let ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(ptr) };
            ctl.job = Some(JobPtr(ptr));
            ctl.epoch = ctl.epoch.wrapping_add(1);
            ctl.remaining = self.threads - 1;
            shared.work_cv.notify_all();
        }
        // The caller is block 0; even if it panics we must wait for the
        // workers before unwinding (they still hold the job pointer).
        let caller = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panicked = {
            let mut ctl = shared.control.lock().unwrap();
            while ctl.remaining > 0 {
                ctl = shared.done_cv.wait(ctl).unwrap();
            }
            ctl.job = None;
            std::mem::replace(&mut ctl.panicked, false)
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a magnum worker thread panicked during a parallel region");
        }
    }

    /// Splits `out` into `threads()` contiguous chunks and calls
    /// `f(start_index, chunk)` on each in parallel. Chunks are disjoint,
    /// in index order, and cover the whole slice.
    pub fn for_each_chunk<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = out.len();
        let nb = self.threads;
        if nb == 1 {
            f(0, out);
            return;
        }
        let base = SendPtr::new(out.as_mut_ptr());
        self.run(&|b| {
            let (start, end) = chunk_bounds(n, nb, b);
            if start < end {
                // Safety: chunk ranges are disjoint and in bounds.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), end - start) };
                f(start, chunk);
            }
        });
    }

    /// Partitions `0..n` into `threads()` contiguous spans (via
    /// [`chunk_bounds`]) and calls `f(start, end)` for each span in
    /// parallel. Unlike [`WorkerTeam::for_each_chunk`] no buffer is
    /// handed out — callers that need disjoint writes (e.g. batched row
    /// transforms) manage their own pointers, keyed by the span.
    pub fn for_each_span<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let nb = self.threads;
        if nb == 1 {
            f(0, n);
            return;
        }
        self.run(&|b| {
            let (start, end) = chunk_bounds(n, nb, b);
            if start < end {
                f(start, end);
            }
        });
    }

    /// Like [`WorkerTeam::for_each_span`], but splits `0..n` into at most
    /// `max_blocks` spans instead of always `threads()`. With an
    /// effective block count of 1 the call runs inline on the caller —
    /// no job is published, no workers are woken — which is what makes
    /// the small-transform clamp actually free: a clamped pass costs
    /// exactly what the serial path costs.
    ///
    /// Determinism: the per-item computation must be independent of the
    /// partition (the same contract as every other parallel region), so
    /// the block count — like the thread count — is purely a performance
    /// knob and results are bitwise identical for any `max_blocks`.
    pub fn for_each_span_capped<F>(&self, n: usize, max_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let nb = self.threads.min(max_blocks.max(1));
        if nb == 1 {
            f(0, n);
            return;
        }
        self.run(&|b| {
            if b >= nb {
                return;
            }
            let (start, end) = chunk_bounds(n, nb, b);
            if start < end {
                f(start, end);
            }
        });
    }

    /// Runs `f(block)` for every block and returns the per-block results
    /// in block order (deterministic reduction input).
    pub fn map_blocks<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let nb = self.threads;
        if nb == 1 {
            return vec![f(0)];
        }
        let mut results: Vec<Option<R>> = (0..nb).map(|_| None).collect();
        let base = SendPtr::new(results.as_mut_ptr());
        self.run(&|b| {
            let r = f(b);
            // Safety: each block writes only its own slot.
            unsafe { *base.add(b) = Some(r) };
        });
        results
            .into_iter()
            .map(|r| r.expect("worker block produced no result"))
            .collect()
    }
}

impl Drop for WorkerTeam {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            {
                let mut ctl = shared.control.lock().unwrap();
                ctl.shutdown = true;
                shared.work_cv.notify_all();
            }
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for WorkerTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTeam")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(shared: &Shared, block: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut ctl = shared.control.lock().unwrap();
            loop {
                if ctl.shutdown {
                    return;
                }
                if ctl.epoch != seen_epoch {
                    seen_epoch = ctl.epoch;
                    break ctl.job.expect("job epoch advanced without a job");
                }
                ctl = shared.work_cv.wait(ctl).unwrap();
            }
        };
        // Safety: the publisher blocks in `run` until `remaining` drops to
        // zero, so the closure outlives this call.
        let f = unsafe { &*job.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(block)));
        let mut ctl = shared.control.lock().unwrap();
        if outcome.is_err() {
            ctl.panicked = true;
        }
        ctl.remaining -= 1;
        if ctl.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_bounds_cover_everything_disjointly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for nb in [1usize, 2, 3, 8, 13] {
                let mut next = 0;
                for b in 0..nb {
                    let (s, e) = chunk_bounds(n, nb, b);
                    assert_eq!(s, next, "gap/overlap at n={n} nb={nb} b={b}");
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn serial_team_runs_inline() {
        let team = WorkerTeam::new(1);
        assert_eq!(team.threads(), 1);
        let hits = AtomicUsize::new(0);
        team.run(&|b| {
            assert_eq!(b, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn every_block_runs_exactly_once_per_job() {
        let team = WorkerTeam::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            team.run(&|b| {
                counts[b].fetch_add(1, Ordering::SeqCst);
            });
        }
        for (b, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 100, "block {b} miscounted");
        }
    }

    #[test]
    fn for_each_chunk_writes_disjoint_slices() {
        let team = WorkerTeam::new(3);
        let mut data = vec![0usize; 1000];
        team.for_each_chunk(&mut data, |start, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = start + j;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn for_each_span_covers_every_index_once() {
        for threads in [1, 3, 8] {
            let team = WorkerTeam::new(threads);
            let n = 97;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            team.for_each_span(n, |start, end| {
                for h in hits.iter().take(end).skip(start) {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "index {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn for_each_span_capped_covers_every_index_once() {
        for (threads, cap) in [(1, 4), (4, 1), (4, 2), (4, 8), (3, 3)] {
            let team = WorkerTeam::new(threads);
            let n = 53;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            team.for_each_span_capped(n, cap, |start, end| {
                for h in hits.iter().take(end).skip(start) {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "index {i} at {threads} threads capped to {cap}"
                );
            }
        }
    }

    #[test]
    fn map_blocks_returns_results_in_block_order() {
        let team = WorkerTeam::new(4);
        let results = team.map_blocks(|b| b * 10);
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn worker_panic_is_reported_and_team_survives() {
        let team = WorkerTeam::new(4);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            team.run(&|b| {
                if b == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(outcome.is_err());
        // The team stays usable after a panic.
        let results = team.map_blocks(|b| b);
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn resolve_threads_precedence_and_parsing() {
        assert_eq!(resolve_threads(None, None).unwrap(), 1);
        assert_eq!(resolve_threads(Some(3), None).unwrap(), 3);
        assert_eq!(resolve_threads(Some(3), Some("7")).unwrap(), 3);
        assert_eq!(resolve_threads(None, Some("7")).unwrap(), 7);
        assert_eq!(resolve_threads(None, Some(" 2 ")).unwrap(), 2);
        assert_eq!(resolve_threads(None, Some("")).unwrap(), 1);
        assert!(resolve_threads(None, Some("four")).is_err());
        assert!(resolve_threads(None, Some("-1")).is_err());
        assert!(resolve_threads(None, Some("0")).unwrap() >= 1);
        assert!(resolve_threads(Some(0), None).unwrap() >= 1);
        assert_eq!(
            resolve_threads(Some(usize::MAX), None).unwrap(),
            MAX_THREADS
        );
    }

    #[test]
    fn effective_threads_clamps_small_grids_to_serial() {
        // Sub-threshold grids fall back to one thread.
        assert_eq!(effective_threads(4, 4096, MIN_CELLS_PER_THREAD), 1);
        assert_eq!(
            effective_threads(2, MIN_CELLS_PER_THREAD - 1, MIN_CELLS_PER_THREAD),
            1
        );
        // Exactly one threshold of cells per extra thread is allowed.
        assert_eq!(
            effective_threads(2, 2 * MIN_CELLS_PER_THREAD, MIN_CELLS_PER_THREAD),
            2
        );
        assert_eq!(
            effective_threads(8, 3 * MIN_CELLS_PER_THREAD, MIN_CELLS_PER_THREAD),
            3
        );
        // A zero threshold disables the clamp entirely.
        assert_eq!(effective_threads(7, 4, 0), 7);
        // Degenerate requests still resolve to at least one thread.
        assert_eq!(effective_threads(0, 10, MIN_CELLS_PER_THREAD), 1);
        assert_eq!(effective_threads(usize::MAX, usize::MAX, 1), MAX_THREADS);
    }

    #[test]
    fn oversized_team_still_covers_all_blocks() {
        // More blocks than items: empty chunks must be harmless.
        let team = WorkerTeam::new(8);
        let mut data = vec![0u8; 3];
        team.for_each_chunk(&mut data, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1]);
    }
}
