//! Structure-of-arrays magnetization storage.
//!
//! [`Field3`] keeps the x/y/z components of a per-cell vector field in
//! three contiguous `f64` planes. The hot loops (RHS sweep, integrator
//! stage fusion, FFT demag packing) stream the planes directly, which is
//! the layout MuMax3 and OOMMF use so the inner loops autovectorize;
//! everything else — probes, snapshots, tests — keeps a `Vec3`-shaped
//! view through [`MagRead`] and the [`Field3::get`]/[`Field3::iter`]
//! accessors.
//!
//! The conversion between layouts is a pure permutation of `f64` values
//! (no arithmetic), so round-tripping through [`Field3::from_vec3s`] and
//! [`Field3::to_vec`] is bitwise lossless. That is what lets the SoA
//! refactor preserve the determinism contract: the same per-cell
//! expressions run on the same bit patterns, only the storage order
//! changed.

use crate::math::Vec3;
use crate::par::SendPtr;

/// Read-only, `Vec3`-shaped view over any magnetization storage.
///
/// Probes and snapshots are generic over this trait so they accept both
/// the simulation's planar [`Field3`] state and plain `Vec<Vec3>` / slice
/// buffers from tests and tools.
pub trait MagRead {
    /// Number of cells.
    fn len(&self) -> usize;
    /// The vector at linear cell index `i`.
    fn at(&self, i: usize) -> Vec3;
    /// True when the field has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MagRead for [Vec3] {
    fn len(&self) -> usize {
        <[Vec3]>::len(self)
    }
    #[inline]
    fn at(&self, i: usize) -> Vec3 {
        self[i]
    }
}

impl MagRead for Vec<Vec3> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }
    #[inline]
    fn at(&self, i: usize) -> Vec3 {
        self[i]
    }
}

impl<const N: usize> MagRead for [Vec3; N] {
    fn len(&self) -> usize {
        N
    }
    #[inline]
    fn at(&self, i: usize) -> Vec3 {
        self[i]
    }
}

impl MagRead for Field3 {
    fn len(&self) -> usize {
        Field3::len(self)
    }
    #[inline]
    fn at(&self, i: usize) -> Vec3 {
        self.get(i)
    }
}

/// A vector field stored as three contiguous component planes.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl Field3 {
    /// An all-zero field with `n` cells.
    pub fn zeros(n: usize) -> Self {
        Field3 {
            x: vec![0.0; n],
            y: vec![0.0; n],
            z: vec![0.0; n],
        }
    }

    /// Converts from array-of-structs storage (bitwise lossless).
    pub fn from_vec3s(v: &[Vec3]) -> Self {
        Field3 {
            x: v.iter().map(|p| p.x).collect(),
            y: v.iter().map(|p| p.y).collect(),
            z: v.iter().map(|p| p.z).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the field has no cells.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The vector at cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    /// Overwrites the vector at cell `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Vec3) {
        self.x[i] = v.x;
        self.y[i] = v.y;
        self.z[i] = v.z;
    }

    /// Adds `v` into the vector at cell `i`.
    #[inline]
    pub fn add(&mut self, i: usize, v: Vec3) {
        self.x[i] += v.x;
        self.y[i] += v.y;
        self.z[i] += v.z;
    }

    /// Sets every cell to `v`.
    pub fn fill(&mut self, v: Vec3) {
        self.x.fill(v.x);
        self.y.fill(v.y);
        self.z.fill(v.z);
    }

    /// Copies all planes from `other` (lengths must match).
    pub fn copy_from(&mut self, other: &Field3) {
        self.x.copy_from_slice(&other.x);
        self.y.copy_from_slice(&other.y);
        self.z.copy_from_slice(&other.z);
    }

    /// Overwrites the planes from array-of-structs storage.
    pub fn copy_from_vec3s(&mut self, v: &[Vec3]) {
        assert_eq!(v.len(), self.len());
        for (i, p) in v.iter().enumerate() {
            self.x[i] = p.x;
            self.y[i] = p.y;
            self.z[i] = p.z;
        }
    }

    /// Converts to array-of-structs storage (bitwise lossless).
    pub fn to_vec(&self) -> Vec<Vec3> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Iterates over cells as `Vec3` values.
    pub fn iter(&self) -> impl Iterator<Item = Vec3> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The x-component plane.
    pub fn xs(&self) -> &[f64] {
        &self.x
    }

    /// The y-component plane.
    pub fn ys(&self) -> &[f64] {
        &self.y
    }

    /// The z-component plane.
    pub fn zs(&self) -> &[f64] {
        &self.z
    }

    /// Raw plane pointers for disjoint-index writes from worker blocks.
    ///
    /// Safety is delegated to the caller exactly as with
    /// [`SendPtr`][crate::par::SendPtr]: blocks must only touch disjoint
    /// index sets.
    pub(crate) fn ptrs(&mut self) -> Field3Ptr {
        Field3Ptr {
            x: SendPtr::new(self.x.as_mut_ptr()),
            y: SendPtr::new(self.y.as_mut_ptr()),
            z: SendPtr::new(self.z.as_mut_ptr()),
        }
    }

    /// Read-only raw plane pointers for unchecked reads from worker
    /// blocks. Used by the integrator fuse closures: a bounds check per
    /// read would keep a branch in the fused sweep's inner loop and
    /// defeat its vectorization.
    pub(crate) fn read_ptr(&self) -> Field3Read {
        Field3Read {
            x: self.x.as_ptr(),
            y: self.y.as_ptr(),
            z: self.z.as_ptr(),
        }
    }
}

/// Read-only raw plane pointers into a [`Field3`], for unchecked reads
/// from parallel block jobs. The underlying buffer must outlive every
/// use and must not be concurrently written at the indices read.
#[derive(Clone, Copy)]
pub(crate) struct Field3Read {
    x: *const f64,
    y: *const f64,
    z: *const f64,
}

// Safety: shared immutable reads from worker threads; the caller
// guarantees the buffer outlives the parallel region (the fuse closures
// borrow locals that outlive `team.run`).
unsafe impl Send for Field3Read {}
unsafe impl Sync for Field3Read {}

impl Field3Read {
    /// Reads the vector at `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and the buffer must not be concurrently
    /// mutated at `i`.
    #[inline(always)]
    pub(crate) unsafe fn get(&self, i: usize) -> Vec3 {
        Vec3::new(*self.x.add(i), *self.y.add(i), *self.z.add(i))
    }

    /// The raw component-plane pointers `(x, y, z)`; see
    /// [`Field3Ptr::planes`].
    #[inline]
    pub(crate) fn planes(&self) -> (*const f64, *const f64, *const f64) {
        (self.x, self.y, self.z)
    }
}

/// Raw plane pointers into a [`Field3`], for writes from parallel block
/// jobs where each block owns a disjoint index range.
#[derive(Clone, Copy)]
pub(crate) struct Field3Ptr {
    x: SendPtr<f64>,
    y: SendPtr<f64>,
    z: SendPtr<f64>,
}

impl Field3Ptr {
    /// Reads the vector at `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not concurrently written by another
    /// block.
    #[inline]
    pub(crate) unsafe fn read(&self, i: usize) -> Vec3 {
        Vec3::new(*self.x.add(i), *self.y.add(i), *self.z.add(i))
    }

    /// Writes the vector at `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and owned exclusively by the calling block.
    #[inline]
    pub(crate) unsafe fn write(&self, i: usize, v: Vec3) {
        *self.x.add(i) = v.x;
        *self.y.add(i) = v.y;
        *self.z.add(i) = v.z;
    }

    /// The raw component-plane pointers `(x, y, z)`.
    ///
    /// Lets stage axpy loops run one plane at a time: three loops over
    /// three pointers each stay under the loop vectorizer's runtime
    /// alias-check budget, where a single interleaved loop over nine
    /// pointers does not.
    #[inline]
    pub(crate) fn planes(&self) -> (*mut f64, *mut f64, *mut f64) {
        (self.x.get(), self.y.get(), self.z.get())
    }
}

/// A batch of `k` same-geometry vector fields, stored K-innermost: the
/// value of member `s` at cell `i` lives at flat index `i * k + s` of a
/// single [`Field3`].
///
/// With the batch index innermost, one sweep over the shared
/// geometry/neighbour tables advances all `k` systems: the per-cell
/// stencil coefficients, neighbour-presence branches and CSR offsets are
/// loaded once per cell and the per-member arithmetic runs over `k`
/// consecutive lanes, which is the layout the loop vectorizer wants.
/// Interleaving and de-interleaving are pure permutations of `f64`
/// values (no arithmetic), so member round-trips are bitwise lossless —
/// the same determinism argument [`Field3::from_vec3s`] makes for the
/// SoA layout itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldBatch {
    data: Field3,
    k: usize,
}

impl FieldBatch {
    /// An all-zero batch of `k` fields with `cells` cells each.
    pub fn zeros(cells: usize, k: usize) -> Self {
        assert!(k > 0, "batch width must be at least 1");
        FieldBatch {
            data: Field3::zeros(cells * k),
            k,
        }
    }

    /// An empty batch (no cells) of nominal width `k` — the "feature
    /// absent" marker, mirroring empty `Field3` scratch buffers.
    pub fn empty(k: usize) -> Self {
        FieldBatch {
            data: Field3::zeros(0),
            k: k.max(1),
        }
    }

    /// Batch width K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cells per member.
    pub fn cells(&self) -> usize {
        self.data.len() / self.k
    }

    /// True when the batch holds no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying interleaved storage.
    pub fn data(&self) -> &Field3 {
        &self.data
    }

    /// Mutable access to the underlying interleaved storage.
    pub fn data_mut(&mut self) -> &mut Field3 {
        &mut self.data
    }

    /// The value of member `s` at cell `i`.
    #[inline]
    pub fn get(&self, i: usize, s: usize) -> Vec3 {
        self.data.get(i * self.k + s)
    }

    /// Overwrites the value of member `s` at cell `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: usize, v: Vec3) {
        self.data.set(i * self.k + s, v);
    }

    /// Interleaves `src` (one full member field) into member slot `s`.
    pub fn load_member<M: MagRead + ?Sized>(&mut self, s: usize, src: &M) {
        assert_eq!(src.len(), self.cells(), "member length mismatch");
        assert!(s < self.k, "member index out of range");
        for i in 0..src.len() {
            self.data.set(i * self.k + s, src.at(i));
        }
    }

    /// De-interleaves member `s` into `dst`.
    pub fn store_member(&self, s: usize, dst: &mut Field3) {
        assert_eq!(dst.len(), self.cells(), "member length mismatch");
        assert!(s < self.k, "member index out of range");
        for i in 0..dst.len() {
            dst.set(i, self.data.get(i * self.k + s));
        }
    }

    /// A zero-copy [`MagRead`] view of member `s` (for probes and
    /// snapshots, which are generic over `MagRead`).
    pub fn member(&self, s: usize) -> BatchMemberView<'_> {
        assert!(s < self.k, "member index out of range");
        BatchMemberView { batch: self, s }
    }

    /// Raw interleaved-plane pointers (see [`Field3::ptrs`]).
    pub(crate) fn ptrs(&mut self) -> Field3Ptr {
        self.data.ptrs()
    }

    /// Read-only raw interleaved-plane pointers (see
    /// [`Field3::read_ptr`]).
    pub(crate) fn read_ptr(&self) -> Field3Read {
        self.data.read_ptr()
    }
}

/// Read-only `Vec3`-shaped view of one member of a [`FieldBatch`].
#[derive(Clone, Copy)]
pub struct BatchMemberView<'a> {
    batch: &'a FieldBatch,
    s: usize,
}

impl MagRead for BatchMemberView<'_> {
    fn len(&self) -> usize {
        self.batch.cells()
    }
    #[inline]
    fn at(&self, i: usize) -> Vec3 {
        self.batch.get(i, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bitwise_lossless() {
        let v = vec![
            Vec3::new(0.1, -2.5e-17, 3e300),
            Vec3::new(-0.0, 1.0, f64::MIN_POSITIVE),
        ];
        let f = Field3::from_vec3s(&v);
        let back = f.to_vec();
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn get_set_add_and_fill() {
        let mut f = Field3::zeros(3);
        f.set(1, Vec3::new(1.0, 2.0, 3.0));
        f.add(1, Vec3::new(0.5, 0.5, 0.5));
        assert_eq!(f.get(1), Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(f.get(0), Vec3::ZERO);
        f.fill(Vec3::X);
        assert!(f.iter().all(|v| v == Vec3::X));
        assert_eq!(f.xs(), &[1.0; 3]);
        assert_eq!(f.zs(), &[0.0; 3]);
    }

    #[test]
    fn magread_views_agree() {
        let v = vec![Vec3::X, Vec3::Y, Vec3::Z];
        let f = Field3::from_vec3s(&v);
        let s: &[Vec3] = &v;
        let a: [Vec3; 3] = [Vec3::X, Vec3::Y, Vec3::Z];
        for i in 0..3 {
            assert_eq!(MagRead::at(&f, i), MagRead::at(s, i));
            assert_eq!(MagRead::at(&a, i), MagRead::at(&v, i));
        }
        assert_eq!(MagRead::len(&f), 3);
        assert!(!MagRead::is_empty(s));
    }

    #[test]
    fn batch_member_round_trip_is_bitwise_lossless() {
        let members = [
            vec![Vec3::new(0.1, -2.5e-17, 3e300), Vec3::new(-0.0, 1.0, 2.0)],
            vec![
                Vec3::new(5.0, 6.0, 7.0),
                Vec3::new(f64::MIN_POSITIVE, 0.0, -1.0),
            ],
            vec![Vec3::X, Vec3::Y],
        ];
        let mut batch = FieldBatch::zeros(2, 3);
        for (s, m) in members.iter().enumerate() {
            batch.load_member(s, m.as_slice());
        }
        for (s, m) in members.iter().enumerate() {
            let mut out = Field3::zeros(2);
            batch.store_member(s, &mut out);
            let view = batch.member(s);
            for (i, v) in m.iter().enumerate() {
                assert_eq!(out.get(i).x.to_bits(), v.x.to_bits());
                assert_eq!(out.get(i).z.to_bits(), v.z.to_bits());
                assert_eq!(view.at(i).y.to_bits(), v.y.to_bits());
            }
        }
        // K-innermost layout: cell 0 of members 0..3 are flat 0..3.
        assert_eq!(batch.data().get(1), members[1][0]);
        assert_eq!(batch.get(1, 2), members[2][1]);
        assert_eq!(batch.cells(), 2);
        assert_eq!(batch.k(), 3);
    }
}
