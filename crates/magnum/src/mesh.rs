//! Finite-difference mesh for a single-layer magnetic film.
//!
//! The paper's devices are 1 nm-thick waveguides, so the solver discretizes
//! a 2-D sheet of `nx × ny` cells with one cell through the thickness —
//! the same "flat" regime MuMax3 is typically run in for such films. The
//! mesh also carries the *geometry mask*: cells can be magnetic (part of
//! the waveguide) or vacuum.

use crate::error::MagnumError;

/// Index of a single cell as `(ix, iy)`.
pub type CellIndex = (usize, usize);

/// A rectangular finite-difference mesh with a magnetic/vacuum mask.
///
/// ```
/// use magnum::Mesh;
/// # fn main() -> Result<(), magnum::MagnumError> {
/// let mesh = Mesh::new(128, 16, [5e-9, 5e-9, 1e-9])?;
/// assert_eq!(mesh.cell_count(), 128 * 16);
/// assert_eq!(mesh.size_x(), 128.0 * 5e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    nx: usize,
    ny: usize,
    cell_size: [f64; 3],
    /// `true` for magnetic cells, `false` for vacuum.
    mask: Vec<bool>,
}

impl Mesh {
    /// Creates a fully magnetic mesh of `nx × ny` cells with the given cell
    /// size `[dx, dy, dz]` in metres.
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidMesh`] if a dimension is zero or a
    /// cell size is not strictly positive and finite.
    pub fn new(nx: usize, ny: usize, cell_size: [f64; 3]) -> Result<Self, MagnumError> {
        if nx == 0 || ny == 0 {
            return Err(MagnumError::InvalidMesh {
                reason: format!("mesh dimensions must be non-zero, got {nx} x {ny}"),
            });
        }
        for (axis, &d) in ["dx", "dy", "dz"].iter().zip(cell_size.iter()) {
            if !(d.is_finite() && d > 0.0) {
                return Err(MagnumError::InvalidMesh {
                    reason: format!("cell size {axis} must be positive and finite, got {d}"),
                });
            }
        }
        Ok(Mesh {
            nx,
            ny,
            cell_size,
            mask: vec![true; nx * ny],
        })
    }

    /// Number of cells along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of cells along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells (magnetic and vacuum).
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of magnetic cells.
    pub fn magnetic_cell_count(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Cell size `[dx, dy, dz]` in metres.
    #[inline]
    pub fn cell_size(&self) -> [f64; 3] {
        self.cell_size
    }

    /// Physical extent along x in metres.
    #[inline]
    pub fn size_x(&self) -> f64 {
        self.nx as f64 * self.cell_size[0]
    }

    /// Physical extent along y in metres.
    #[inline]
    pub fn size_y(&self) -> f64 {
        self.ny as f64 * self.cell_size[1]
    }

    /// Film thickness (dz) in metres.
    #[inline]
    pub fn thickness(&self) -> f64 {
        self.cell_size[2]
    }

    /// Volume of one cell in m³.
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        self.cell_size[0] * self.cell_size[1] * self.cell_size[2]
    }

    /// Flattened (row-major) index of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is outside the mesh.
    #[inline]
    pub fn linear_index(&self, ix: usize, iy: usize) -> usize {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix}, {iy}) outside mesh"
        );
        iy * self.nx + ix
    }

    /// Inverse of [`Mesh::linear_index`].
    #[inline]
    pub fn cell_index(&self, linear: usize) -> CellIndex {
        (linear % self.nx, linear / self.nx)
    }

    /// Centre coordinates `(x, y)` of cell `(ix, iy)` in metres.
    #[inline]
    pub fn cell_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        (
            (ix as f64 + 0.5) * self.cell_size[0],
            (iy as f64 + 0.5) * self.cell_size[1],
        )
    }

    /// Cell containing physical point `(x, y)`, or `None` if outside.
    pub fn cell_at(&self, x: f64, y: f64) -> Option<CellIndex> {
        if x < 0.0 || y < 0.0 {
            return None;
        }
        let ix = (x / self.cell_size[0]) as usize;
        let iy = (y / self.cell_size[1]) as usize;
        if ix < self.nx && iy < self.ny {
            Some((ix, iy))
        } else {
            None
        }
    }

    /// Whether cell `(ix, iy)` is magnetic.
    #[inline]
    pub fn is_magnetic(&self, ix: usize, iy: usize) -> bool {
        self.mask[self.linear_index(ix, iy)]
    }

    /// Whether the cell at flattened index `i` is magnetic.
    #[inline]
    pub fn is_magnetic_linear(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Marks cell `(ix, iy)` as magnetic (`true`) or vacuum (`false`).
    pub fn set_magnetic(&mut self, ix: usize, iy: usize, magnetic: bool) {
        let i = self.linear_index(ix, iy);
        self.mask[i] = magnetic;
    }

    /// Replaces the whole mask using a predicate over cell-centre
    /// coordinates in metres.
    ///
    /// This is how [`crate::geometry::Shape`]s are rasterized.
    pub fn set_mask_by<F: FnMut(f64, f64) -> bool>(&mut self, mut predicate: F) {
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let (x, y) = self.cell_center(ix, iy);
                let i = iy * self.nx + ix;
                self.mask[i] = predicate(x, y);
            }
        }
    }

    /// Read-only view of the flattened mask.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Iterator over the indices `(ix, iy)` of all magnetic cells.
    pub fn magnetic_cells(&self) -> impl Iterator<Item = CellIndex> + '_ {
        let nx = self.nx;
        self.mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(move |(i, _)| (i % nx, i / nx))
    }

    /// Renders the mask as an ASCII map (`#` magnetic, `.` vacuum), top row
    /// = highest y, mirroring the paper's figures.
    pub fn mask_ascii(&self) -> String {
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        for iy in (0..self.ny).rev() {
            for ix in 0..self.nx {
                out.push(if self.is_magnetic(ix, iy) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 4, [2e-9, 2e-9, 1e-9]).unwrap()
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(matches!(
            Mesh::new(0, 4, [1e-9; 3]),
            Err(MagnumError::InvalidMesh { .. })
        ));
        assert!(matches!(
            Mesh::new(4, 0, [1e-9; 3]),
            Err(MagnumError::InvalidMesh { .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_cell_size() {
        assert!(Mesh::new(4, 4, [0.0, 1e-9, 1e-9]).is_err());
        assert!(Mesh::new(4, 4, [1e-9, -1e-9, 1e-9]).is_err());
        assert!(Mesh::new(4, 4, [1e-9, 1e-9, f64::NAN]).is_err());
    }

    #[test]
    fn linear_index_round_trips() {
        let m = mesh();
        for iy in 0..4 {
            for ix in 0..8 {
                let i = m.linear_index(ix, iy);
                assert_eq!(m.cell_index(i), (ix, iy));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn linear_index_panics_outside() {
        mesh().linear_index(8, 0);
    }

    #[test]
    fn cell_center_is_offset_half() {
        let m = mesh();
        let (x, y) = m.cell_center(0, 0);
        assert!((x - 1e-9).abs() < 1e-18);
        assert!((y - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn cell_at_inverts_center() {
        let m = mesh();
        for iy in 0..4 {
            for ix in 0..8 {
                let (x, y) = m.cell_center(ix, iy);
                assert_eq!(m.cell_at(x, y), Some((ix, iy)));
            }
        }
        assert_eq!(m.cell_at(-1e-9, 0.0), None);
        assert_eq!(m.cell_at(1.0, 1.0), None);
    }

    #[test]
    fn default_mask_is_all_magnetic() {
        let m = mesh();
        assert_eq!(m.magnetic_cell_count(), 32);
        assert_eq!(m.magnetic_cells().count(), 32);
    }

    #[test]
    fn mask_predicate_carves_geometry() {
        let mut m = mesh();
        // Keep only the left half.
        m.set_mask_by(|x, _| x < 8e-9);
        assert_eq!(m.magnetic_cell_count(), 16);
        assert!(m.is_magnetic(0, 0));
        assert!(!m.is_magnetic(7, 0));
    }

    #[test]
    fn set_magnetic_toggles_single_cell() {
        let mut m = mesh();
        m.set_magnetic(3, 2, false);
        assert!(!m.is_magnetic(3, 2));
        assert_eq!(m.magnetic_cell_count(), 31);
        m.set_magnetic(3, 2, true);
        assert_eq!(m.magnetic_cell_count(), 32);
    }

    #[test]
    fn ascii_map_has_expected_shape() {
        let mut m = mesh();
        m.set_magnetic(0, 3, false); // top-left in the rendered map
        let art = m.mask_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 8));
        assert!(lines[0].starts_with('.'));
        assert!(lines[3].starts_with('#'));
    }

    #[test]
    fn extents_and_volume() {
        let m = mesh();
        assert!((m.size_x() - 16e-9).abs() < 1e-18);
        assert!((m.size_y() - 8e-9).abs() < 1e-18);
        assert!((m.thickness() - 1e-9).abs() < 1e-18);
        assert!((m.cell_volume() - 4e-27).abs() < 1e-40);
    }
}
