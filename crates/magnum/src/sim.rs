//! Simulation orchestrator: assembles the LLG system, steps it in time,
//! and exposes the state to probes.

use crate::damping::AbsorbingFrame;
use crate::error::MagnumError;
use crate::excitation::Antenna;
use crate::field::anisotropy::UniaxialAnisotropy;
use crate::field::demag::{DemagMethod, NewellDemag, PadPolicy, ThinFilmDemag};
use crate::field::exchange::Exchange;
use crate::field::thermal::ThermalField;
use crate::field::zeeman::Zeeman;
use crate::field::FieldTerm;
use crate::field3::Field3;
use crate::geometry::{rasterize, Shape};
use crate::llg::{LlgSystem, SystemSpec};
use crate::material::Material;
use crate::math::Vec3;
use crate::mesh::Mesh;
use crate::probe::{Component, Snapshot};
use crate::solver::{Integrator, IntegratorKind};
use crate::{GAMMA, MU0};

/// A ready-to-run micromagnetic simulation.
///
/// Built with [`Simulation::builder`]; see the crate-level example.
pub struct Simulation {
    mesh: Mesh,
    material: Material,
    m: Field3,
    system: LlgSystem,
    integrator: Box<dyn Integrator>,
    /// The kind the builder resolved `integrator` from, kept so a
    /// [`crate::batch::BatchedSimulation`] can instantiate the matching
    /// batch stepper.
    integrator_kind: IntegratorKind,
    thermal: Option<ThermalField>,
    /// Uniform α = 0.5 map swapped into the system during [`Simulation::relax`]
    /// (allocated on first use, reused afterwards).
    relax_alpha: Vec<f64>,
    time: f64,
    dt: f64,
}

impl Simulation {
    /// Starts building a simulation on the given mesh and material.
    pub fn builder(mesh: Mesh, material: Material) -> SimulationBuilder {
        SimulationBuilder::new(mesh, material)
    }

    /// The simulation mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The fixed time step in seconds.
    pub fn time_step(&self) -> f64 {
        self.dt
    }

    /// Overrides the time step (seconds, must be positive and finite).
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidConfig`] for a non-positive step.
    pub fn set_time_step(&mut self, dt: f64) -> Result<(), MagnumError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MagnumError::InvalidConfig {
                reason: format!("time step must be positive and finite, got {dt}"),
            });
        }
        self.dt = dt;
        Ok(())
    }

    /// Read-only view of the unit magnetization (row-major mesh order;
    /// vacuum cells are zero), stored as SoA component planes. Use
    /// [`Field3::get`]/[`Field3::iter`] for `Vec3`-shaped access or
    /// [`Field3::to_vec`] for an AoS copy.
    pub fn magnetization(&self) -> &Field3 {
        &self.m
    }

    /// Magnetization at cell `(ix, iy)`.
    pub fn magnetization_at(&self, ix: usize, iy: usize) -> Vec3 {
        self.m.get(self.mesh.linear_index(ix, iy))
    }

    /// Mean unit magnetization over the magnetic cells.
    pub fn magnetization_mean(&self) -> Vec3 {
        let count = self.mesh.magnetic_cell_count().max(1);
        let sum: Vec3 = self
            .m
            .iter()
            .zip(self.mesh.mask().iter())
            .filter(|(_, &mag)| mag)
            .map(|(v, _)| v)
            .sum();
        sum / count as f64
    }

    /// Adds an antenna after construction (e.g. per-input-pattern drives).
    pub fn add_antenna(&mut self, antenna: Antenna) {
        self.system.add_antenna(antenna);
    }

    /// Removes all antennas.
    pub fn clear_antennas(&mut self) {
        self.system.clear_antennas();
    }

    /// The number of worker threads the simulation's parallel engine uses
    /// (1 = serial). Results are bitwise independent of this value.
    pub fn threads(&self) -> usize {
        self.system.par().threads()
    }

    /// Advances the simulation by exactly one time step.
    ///
    /// # Errors
    ///
    /// Propagates integrator failures ([`MagnumError::Diverged`],
    /// [`MagnumError::StepSizeUnderflow`]).
    pub fn step(&mut self) -> Result<(), MagnumError> {
        if let Some(thermal) = self.thermal.as_mut() {
            thermal.draw(self.dt, &mut self.system.thermal);
        }
        let taken = self
            .integrator
            .step(&mut self.system, self.time, self.dt, &mut self.m)?;
        self.time += taken;
        Ok(())
    }

    /// Runs for `duration` seconds (rounded up to whole steps).
    ///
    /// # Errors
    ///
    /// Propagates the first step failure.
    pub fn run(&mut self, duration: f64) -> Result<(), MagnumError> {
        let t_end = self.time + duration;
        while self.time < t_end - 1e-21 {
            self.step()?;
        }
        Ok(())
    }

    /// Runs for `duration` seconds, invoking `observer` with the current
    /// time and state every `sample_interval` seconds of simulated time
    /// (and once at the start).
    ///
    /// Sample times are computed as `t0 + k·interval` (no accumulated
    /// floating-point drift), and each scheduled sample fires exactly
    /// once: for whole-multiple durations the final sample lands on the
    /// end time, otherwise the run ends without an extra unscheduled
    /// call — so probe accumulators (e.g. [`crate::probe::DftProbe`]) see
    /// exactly `⌊duration/interval⌋ + 1` samples.
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidConfig`] for a non-positive sample
    /// interval, and propagates the first step failure.
    pub fn run_sampled<F>(
        &mut self,
        duration: f64,
        sample_interval: f64,
        mut observer: F,
    ) -> Result<(), MagnumError>
    where
        F: FnMut(f64, &Simulation),
    {
        if !(sample_interval.is_finite() && sample_interval > 0.0) {
            return Err(MagnumError::InvalidConfig {
                reason: format!(
                    "sample interval must be positive and finite, got {sample_interval}"
                ),
            });
        }
        let t0 = self.time;
        let t_end = t0 + duration;
        let mut taken: u64 = 0;
        while self.time < t_end - 1e-21 {
            if self.time >= t0 + taken as f64 * sample_interval - 1e-21 {
                observer(self.time, self);
                taken += 1;
            }
            self.step()?;
        }
        // The loop exits at t_end, so a sample scheduled for the final
        // instant has not fired yet; take it now. If the next scheduled
        // sample lies beyond the run, everything due has already fired.
        if taken == 0 || t0 + taken as f64 * sample_interval <= t_end + 1e-21 {
            observer(self.time, self);
        }
        Ok(())
    }

    /// Relaxes the system towards its energy minimum by integrating with
    /// a temporarily large damping (α = 0.5) until the maximum torque
    /// falls below `torque_tolerance` (1/s) or `max_steps` steps elapse.
    /// Antennas and thermal noise are suspended during relaxation, and
    /// the simulation clock is not advanced.
    ///
    /// Returns a [`Relaxation`] report; check
    /// [`converged`](Relaxation::converged) — running out of steps is not
    /// an error, but proceeding from an unrelaxed state is rarely what a
    /// caller wants.
    ///
    /// # Errors
    ///
    /// Propagates integrator failures.
    pub fn relax(
        &mut self,
        torque_tolerance: f64,
        max_steps: usize,
    ) -> Result<Relaxation, MagnumError> {
        // Swap the relaxation damping map in instead of cloning the live
        // one: after the first call this allocates nothing, and the swap
        // keeps the system's precomputed torque prefactors in sync.
        if self.relax_alpha.len() != self.m.len() {
            self.relax_alpha = vec![0.5; self.m.len()];
        }
        self.system.swap_alpha(&mut self.relax_alpha);
        let saved_antennas = std::mem::take(&mut self.system.antennas);
        let saved_thermal = std::mem::take(&mut self.system.thermal);
        let mut error = None;
        let mut outcome = Relaxation {
            converged: false,
            torque: self.system.max_torque(&self.m, self.time),
            steps: 0,
        };
        outcome.converged = outcome.torque < torque_tolerance;
        while !outcome.converged && outcome.steps < max_steps {
            match self
                .integrator
                .step(&mut self.system, self.time, self.dt, &mut self.m)
            {
                Ok(_) => {}
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
            outcome.steps += 1;
            outcome.torque = self.system.max_torque(&self.m, self.time);
            outcome.converged = outcome.torque < torque_tolerance;
        }
        // Swap back: the system regains its original damping (and
        // prefactors), `relax_alpha` is the α = 0.5 map again.
        self.system.swap_alpha(&mut self.relax_alpha);
        self.system.antennas = saved_antennas;
        self.system.thermal = saved_thermal;
        match error {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Total energy of the conservative field terms, in joules.
    ///
    /// Takes `&mut self` because the evaluation reuses the system-owned
    /// per-term scratch (the same buffers the integrator threads through
    /// `accumulate_par`), instead of a locked fallback.
    pub fn total_energy(&mut self) -> f64 {
        self.system.energy(
            &self.m,
            self.time,
            self.material.saturation_magnetization(),
            self.mesh.cell_volume(),
        )
    }

    /// Maximum torque |dm/dt| (1/s) in the current state.
    pub fn max_torque(&self) -> f64 {
        self.system.max_torque(&self.m, self.time)
    }

    /// Captures a spatial snapshot of a magnetization component.
    pub fn snapshot(&self, component: Component) -> Snapshot {
        Snapshot::capture(&self.mesh, &self.m, component)
    }

    /// The assembled LLG system (batch backend plumbing).
    pub(crate) fn system_ref(&self) -> &LlgSystem {
        &self.system
    }

    /// Mutable access to the LLG system — the batched stepper drives a
    /// host member's system through all K members.
    pub(crate) fn system_mut(&mut self) -> &mut LlgSystem {
        &mut self.system
    }

    /// Mutable access to the magnetization, for batch write-back.
    pub(crate) fn magnetization_mut(&mut self) -> &mut Field3 {
        &mut self.m
    }

    /// The member's own thermal generator (its RNG stream), if T > 0.
    pub(crate) fn thermal_field_mut(&mut self) -> Option<&mut ThermalField> {
        self.thermal.as_mut()
    }

    /// Whether this simulation carries a thermal field (T > 0).
    pub(crate) fn has_thermal(&self) -> bool {
        self.thermal.is_some()
    }

    /// Overwrites the clock, for batch write-back.
    pub(crate) fn set_time_internal(&mut self, time: f64) {
        self.time = time;
    }

    /// The integrator kind the builder resolved.
    pub(crate) fn integrator_kind(&self) -> IntegratorKind {
        self.integrator_kind
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("mesh", &(self.mesh.nx(), self.mesh.ny()))
            .field("time", &self.time)
            .field("dt", &self.dt)
            .field("integrator", &self.integrator.name())
            .finish()
    }
}

/// Outcome of [`Simulation::relax`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relaxation {
    /// Whether the torque dropped below the tolerance within the step
    /// budget.
    pub converged: bool,
    /// The final maximum torque |dm/dt| in 1/s.
    pub torque: f64,
    /// Integration steps actually taken.
    pub steps: usize,
}

/// Builder for [`Simulation`] (see [`Simulation::builder`]).
pub struct SimulationBuilder {
    mesh: Mesh,
    material: Material,
    shape: Option<Box<dyn Shape>>,
    initial: Vec3,
    demag: DemagMethod,
    demag_padding: PadPolicy,
    external_field: Vec3,
    temperature: f64,
    seed: u64,
    frame: Option<AbsorbingFrame>,
    damping_map: Option<Vec<f64>>,
    integrator: Option<IntegratorKind>,
    allow_non_stratonovich: bool,
    dt: Option<f64>,
    dt_safety: f64,
    antennas: Vec<Antenna>,
    threads: Option<usize>,
    min_cells_per_thread: Option<usize>,
}

impl SimulationBuilder {
    /// Starts a builder with defaults: uniform +ẑ magnetization, local
    /// thin-film demag, no external field, T = 0, RK4, automatic dt.
    pub fn new(mesh: Mesh, material: Material) -> Self {
        SimulationBuilder {
            mesh,
            material,
            shape: None,
            initial: Vec3::Z,
            demag: DemagMethod::ThinFilmLocal,
            demag_padding: PadPolicy::default(),
            external_field: Vec3::ZERO,
            temperature: 0.0,
            seed: 0,
            frame: None,
            damping_map: None,
            integrator: None,
            allow_non_stratonovich: false,
            dt: None,
            dt_safety: 0.25,
            antennas: Vec::new(),
            threads: None,
            min_cells_per_thread: None,
        }
    }

    /// Carves the magnet geometry out of the mesh using a shape.
    pub fn shape<S: Shape + 'static>(mut self, shape: S) -> Self {
        self.shape = Some(Box::new(shape));
        self
    }

    /// Sets the uniform initial magnetization direction (normalized).
    pub fn uniform_magnetization(mut self, direction: Vec3) -> Self {
        self.initial = direction;
        self
    }

    /// Selects the demagnetization model.
    pub fn demag(mut self, method: DemagMethod) -> Self {
        self.demag = method;
        self
    }

    /// Padding policy for the [`DemagMethod::NewellFft`] convolution grid
    /// (default [`PadPolicy::GoodSize`]). [`PadPolicy::Exact`] pads to
    /// `2n − 1` per axis — typically prime lengths, driving the Bluestein
    /// FFT fallback through real trajectories.
    pub fn demag_padding(mut self, policy: PadPolicy) -> Self {
        self.demag_padding = policy;
        self
    }

    /// Applies a uniform static external field (A/m).
    pub fn external_field(mut self, field: Vec3) -> Self {
        self.external_field = field;
        self
    }

    /// Enables the thermal field at `temperature` kelvin.
    pub fn temperature(mut self, temperature: f64) -> Self {
        self.temperature = temperature;
        self
    }

    /// Seed for the thermal field RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an absorbing damping frame around the whole window.
    pub fn absorbing_frame(mut self, frame: AbsorbingFrame) -> Self {
        self.frame = Some(frame);
        self
    }

    /// Supplies a custom per-cell damping map (overrides the frame).
    pub fn damping_map(mut self, map: Vec<f64>) -> Self {
        self.damping_map = Some(map);
        self
    }

    /// Chooses the time integrator.
    ///
    /// Without an explicit choice the builder picks RK4 for deterministic
    /// runs and Heun when `temperature > 0` (the stochastic-Heun scheme is
    /// the only provided integrator that converges to the Stratonovich
    /// solution of the thermal LLG equation). Explicitly combining a
    /// non-Heun integrator with `temperature > 0` is rejected at build
    /// time unless [`allow_non_stratonovich`](Self::allow_non_stratonovich)
    /// is set.
    pub fn integrator(mut self, kind: IntegratorKind) -> Self {
        self.integrator = Some(kind);
        self
    }

    /// Permits a non-Heun integrator together with `temperature > 0`.
    ///
    /// The result does not converge to the Stratonovich solution — the
    /// physically correct interpretation of Brown's thermal field — so
    /// this is only meant for convergence studies and ablations.
    pub fn allow_non_stratonovich(mut self) -> Self {
        self.allow_non_stratonovich = true;
        self
    }

    /// Sets the worker-thread count for the intra-simulation parallel
    /// engine. `0` means "auto" (all logical CPUs). Without this call the
    /// `MAGNUM_THREADS` environment variable decides, defaulting to 1
    /// (serial). Results are bitwise identical for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the cells-per-thread threshold below which the build
    /// clamps the worker count towards serial (default
    /// [`crate::par::MIN_CELLS_PER_THREAD`]). On sub-threshold grids the
    /// per-sweep fork/join overhead exceeds the per-cell work, so a
    /// requested thread count is only honoured once the grid supplies at
    /// least this many cells per worker. Pass `0` to disable the clamp
    /// and take the requested count verbatim (thread-scaling studies,
    /// determinism tests).
    pub fn min_cells_per_thread(mut self, cells: usize) -> Self {
        self.min_cells_per_thread = Some(cells);
        self
    }

    /// Fixes the time step instead of the automatic stability-based one.
    pub fn time_step(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Safety factor for the automatic time step (default 0.25; smaller
    /// is more conservative).
    pub fn time_step_safety(mut self, factor: f64) -> Self {
        self.dt_safety = factor;
        self
    }

    /// Adds an excitation antenna.
    pub fn antenna(mut self, antenna: Antenna) -> Self {
        self.antennas.push(antenna);
        self
    }

    /// Assembles the [`Simulation`].
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidConfig`] if a custom damping map has
    /// the wrong length, the time step is invalid, the geometry leaves no
    /// magnetic cells, `MAGNUM_THREADS` is unparsable, or a non-Heun
    /// integrator is combined with `temperature > 0` without
    /// [`allow_non_stratonovich`](Self::allow_non_stratonovich).
    pub fn build(self) -> Result<Simulation, MagnumError> {
        let SimulationBuilder {
            mut mesh,
            material,
            shape,
            initial,
            demag,
            demag_padding,
            external_field,
            temperature,
            seed,
            frame,
            damping_map,
            integrator,
            allow_non_stratonovich,
            dt,
            dt_safety,
            antennas,
            threads,
            min_cells_per_thread,
        } = self;

        let threads =
            crate::par::resolve_threads(threads, std::env::var("MAGNUM_THREADS").ok().as_deref())
                .map_err(|reason| MagnumError::InvalidConfig { reason })?;
        // Small-grid clamp: honouring a large worker count on a grid with
        // too few cells per worker makes every sweep slower than serial
        // (fork/join overhead dominates), so sub-threshold grids take the
        // serial arm unless the caller disabled the clamp.
        let threads = crate::par::effective_threads(
            threads,
            mesh.cell_count(),
            min_cells_per_thread.unwrap_or(crate::par::MIN_CELLS_PER_THREAD),
        );

        let integrator = match integrator {
            None if temperature > 0.0 => IntegratorKind::Heun,
            None => IntegratorKind::default(),
            Some(kind) => {
                if temperature > 0.0 && kind != IntegratorKind::Heun && !allow_non_stratonovich {
                    return Err(MagnumError::InvalidConfig {
                        reason: format!(
                            "temperature > 0 requires the Heun integrator ({kind:?} does not \
                             converge to the Stratonovich solution); use IntegratorKind::Heun \
                             or opt out via allow_non_stratonovich()"
                        ),
                    });
                }
                kind
            }
        };

        if let Some(shape) = shape {
            rasterize(&mut mesh, &shape);
        }
        if mesh.magnetic_cell_count() == 0 {
            return Err(MagnumError::InvalidConfig {
                reason: "geometry leaves no magnetic cells".into(),
            });
        }

        let n = mesh.cell_count();
        let direction = initial.normalized();
        if direction == Vec3::ZERO {
            return Err(MagnumError::InvalidConfig {
                reason: "initial magnetization direction must be non-zero".into(),
            });
        }
        let mut m = Field3::zeros(n);
        for (i, &mag) in mesh.mask().iter().enumerate() {
            if mag {
                m.set(i, direction);
            }
        }

        // Field terms.
        let mut terms: Vec<Box<dyn FieldTerm>> = Vec::new();
        if material.exchange_stiffness() > 0.0 && material.saturation_magnetization() > 0.0 {
            terms.push(Box::new(Exchange::new(&mesh, &material)));
        }
        if material.anisotropy_constant() != 0.0 {
            terms.push(Box::new(UniaxialAnisotropy::new(&mesh, &material)));
        }
        match demag {
            DemagMethod::None => {}
            DemagMethod::ThinFilmLocal => {
                terms.push(Box::new(ThinFilmDemag::new(&mesh, &material)));
            }
            DemagMethod::NewellFft => {
                // Build the Newell kernel tables on a temporary worker team
                // of the same width the simulation will run with; the
                // construction is bitwise independent of the thread count.
                // The builder's cells-per-thread override flows into the
                // convolution passes too (Some(0) disables the FFT clamp —
                // the parity tests' escape hatch).
                let team = crate::par::WorkerTeam::new(threads);
                terms.push(Box::new(NewellDemag::with_options(
                    &mesh,
                    &material,
                    &team,
                    demag_padding,
                    min_cells_per_thread,
                )));
            }
        }
        if external_field != Vec3::ZERO {
            terms.push(Box::new(Zeeman::uniform(external_field)));
        }

        // Damping map.
        let alpha0 = material.gilbert_damping();
        let alpha = if let Some(map) = damping_map {
            if map.len() != n {
                return Err(MagnumError::InvalidConfig {
                    reason: format!(
                        "damping map length {} does not match cell count {n}",
                        map.len()
                    ),
                });
            }
            map
        } else if let Some(frame) = frame {
            frame.damping_map(&mesh, alpha0)
        } else {
            vec![alpha0; n]
        };

        // Thermal field, driven by the *per-cell* damping so absorbing
        // frames satisfy fluctuation–dissipation locally.
        let thermal = if temperature > 0.0 {
            Some(ThermalField::with_damping(
                &mesh,
                &material,
                &alpha,
                temperature,
                seed,
            ))
        } else {
            None
        };
        let thermal_buffer = if thermal.is_some() {
            vec![Vec3::ZERO; n]
        } else {
            Vec::new()
        };

        // Automatic time step from the largest field scale present.
        let dt = match dt {
            Some(dt) => {
                if !(dt.is_finite() && dt > 0.0) {
                    return Err(MagnumError::InvalidConfig {
                        reason: format!("time step must be positive and finite, got {dt}"),
                    });
                }
                dt
            }
            None => {
                let [dx, dy, _] = mesh.cell_size();
                let ms = material.saturation_magnetization();
                let exch = if ms > 0.0 {
                    2.0 * material.exchange_stiffness() / (MU0 * ms)
                        * (2.0 / (dx * dx) + 2.0 / (dy * dy))
                        * 2.0
                } else {
                    0.0
                };
                let anis = if ms > 0.0 {
                    2.0 * material.anisotropy_constant().abs() / (MU0 * ms)
                } else {
                    0.0
                };
                let demag_scale = match demag {
                    DemagMethod::None => 0.0,
                    _ => ms,
                };
                let h_scale = exch + anis + demag_scale + external_field.norm() + 1.0;
                dt_safety / (GAMMA * MU0 * h_scale)
            }
        };

        let system = SystemSpec {
            terms,
            antennas,
            thermal: thermal_buffer,
            alpha,
            gamma: material.gamma(),
            // One-time setup copy: the system owns its mask so the hot
            // path never chases a reference into the mesh.
            mask: mesh.mask().to_vec(),
            nx: mesh.nx(),
            threads,
        }
        .build();
        let integrator_kind = integrator;
        let integrator = integrator.instantiate(n);

        Ok(Simulation {
            mesh,
            material,
            m,
            system,
            integrator,
            integrator_kind,
            thermal,
            relax_alpha: Vec::new(),
            time: 0.0,
            dt,
        })
    }
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("mesh", &(self.mesh.nx(), self.mesh.ny()))
            .field("demag", &self.demag)
            .field("temperature", &self.temperature)
            .field("integrator", &self.integrator)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excitation::Drive;
    use crate::geometry::Rect;
    use crate::probe::{DftProbe, RegionProbe};

    fn fecob_strip(nx: usize, ny: usize) -> SimulationBuilder {
        let mesh = Mesh::new(nx, ny, [5e-9, 5e-9, 1e-9]).unwrap();
        Simulation::builder(mesh, Material::fecob())
    }

    #[test]
    fn build_defaults_are_sane() {
        let sim = fecob_strip(16, 4).build().unwrap();
        assert!(sim.time_step() > 1e-16 && sim.time_step() < 1e-11);
        assert_eq!(sim.time(), 0.0);
        assert!((sim.magnetization_mean() - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn uniform_perpendicular_state_is_stationary() {
        // FeCoB with Ku > μ₀Ms²/2: m = +ẑ is an equilibrium; running a few
        // ps must not move it.
        let mut sim = fecob_strip(8, 4).build().unwrap();
        sim.run(5e-12).unwrap();
        let mean = sim.magnetization_mean();
        assert!((mean - Vec3::Z).norm() < 1e-9, "drifted to {mean}");
    }

    #[test]
    fn energy_decreases_during_damped_relaxation() {
        // Start tilted; with damping and no drive, energy must decrease.
        let mut sim = fecob_strip(8, 4)
            .uniform_magnetization(Vec3::new(0.3, 0.0, 1.0))
            .build()
            .unwrap();
        let e0 = sim.total_energy();
        sim.run(50e-12).unwrap();
        let e1 = sim.total_energy();
        assert!(e1 < e0, "energy should decrease: {e0} -> {e1}");
    }

    #[test]
    fn scratch_based_energy_matches_per_term_reference() {
        // `total_energy` runs each term through `accumulate_par` with the
        // system-owned scratch; the value must be bitwise identical to
        // the reference per-term `FieldTerm::energy` sum — including the
        // FFT demag, which used to go through a locked fallback buffer.
        let mut sim = fecob_strip(9, 5)
            .demag(DemagMethod::NewellFft)
            .uniform_magnetization(Vec3::new(0.4, 0.2, 1.0))
            .build()
            .unwrap();
        let ms = sim.material().saturation_magnetization();
        let v = sim.mesh().cell_volume();
        let m = sim.magnetization().to_vec();
        let t = sim.time();
        let reference: f64 = sim
            .system
            .terms
            .iter()
            .map(|term| term.energy(&m, t, ms, v))
            .sum();
        assert_eq!(sim.total_energy(), reference);
    }

    #[test]
    fn steady_state_stepping_is_scratch_allocation_free() {
        // The integrator hot loop must never rebuild demag scratch or FFT
        // row buffers: everything is sized during the warm-up evaluations
        // and reused afterwards. The counter is thread-local, so the test
        // is immune to other tests running concurrently; worker threads
        // cannot allocate by construction (their row scratch is always
        // passed in). Exact padding forces Bluestein axes — the one FFT
        // path that genuinely needs per-eval scratch.
        let mut sim = fecob_strip(9, 5)
            .demag(DemagMethod::NewellFft)
            .demag_padding(PadPolicy::Exact)
            .threads(4)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        for _ in 0..2 {
            sim.step().unwrap();
        }
        let allocs = crate::fft::hot_scratch_allocs();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(
            crate::fft::hot_scratch_allocs(),
            allocs,
            "stepping must not allocate hot-path scratch after warm-up"
        );
    }

    #[test]
    fn relax_reduces_torque() {
        let mut sim = fecob_strip(8, 4)
            .uniform_magnetization(Vec3::new(0.5, 0.0, 1.0))
            .build()
            .unwrap();
        let t0 = sim.max_torque();
        let report = sim.relax(t0 * 1e-3, 10_000).unwrap();
        assert!(report.converged, "relaxation should converge: {report:?}");
        assert!(report.torque < t0 * 1e-3);
        assert!(report.steps > 0);
        assert!(sim.max_torque() < t0 * 1e-2);
        // Relaxation lands on the easy axis (either pole).
        assert!(sim.magnetization_mean().z.abs() > 0.99);
    }

    #[test]
    fn relax_reports_non_convergence_when_steps_run_out() {
        let mut sim = fecob_strip(8, 4)
            .uniform_magnetization(Vec3::new(0.5, 0.0, 1.0))
            .build()
            .unwrap();
        // One step cannot possibly reach a 1e-9 relative torque.
        let report = sim.relax(sim.max_torque() * 1e-9, 1).unwrap();
        assert!(!report.converged, "must report non-convergence: {report:?}");
        assert_eq!(report.steps, 1);
        assert!(report.torque.is_finite());
    }

    #[test]
    fn relax_with_zero_steps_reports_initial_torque() {
        let mut sim = fecob_strip(8, 4)
            .uniform_magnetization(Vec3::new(0.5, 0.0, 1.0))
            .build()
            .unwrap();
        // Zero steps: the initial torque (measured under relaxation
        // conditions, α = 0.5) is reported without any stepping.
        let report = sim.relax(1e-30, 0).unwrap();
        assert!(!report.converged);
        assert_eq!(report.steps, 0);
        assert!(report.torque > 0.0);
        // An already-converged state needs no steps at all.
        let relaxed = sim.relax(report.torque * 2.0, 100).unwrap();
        assert!(relaxed.converged);
        assert_eq!(relaxed.steps, 0);
        assert_eq!(relaxed.torque, report.torque);
    }

    #[test]
    fn antenna_excites_precession() {
        let mesh = Mesh::new(64, 4, [5e-9, 5e-9, 1e-9]).unwrap();
        let drive = Drive::logic_cw(3e3, 10e9, 0.0);
        let antenna = Antenna::over_rect(&mesh, 0.0, 0.0, 15e-9, 20e-9, Vec3::X, drive);
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .antenna(antenna)
            .build()
            .unwrap();
        sim.run(0.5e-9).unwrap();
        // Near the antenna the in-plane component oscillates.
        let mx = sim.magnetization_at(1, 2).x;
        assert!(mx.abs() > 1e-6, "no precession near antenna: mx = {mx}");
        // The state stays on the unit sphere.
        for (v, &mag) in sim.magnetization().iter().zip(sim.mesh().mask()) {
            if mag {
                assert!((v.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn spin_wave_propagates_down_the_strip() {
        let mesh = Mesh::new(128, 4, [5e-9, 5e-9, 1e-9]).unwrap();
        let drive = Drive::logic_cw(5e3, 10e9, 0.0);
        let antenna = Antenna::over_rect(&mesh, 20e-9, 0.0, 35e-9, 20e-9, Vec3::X, drive);
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .antenna(antenna)
            .build()
            .unwrap();
        let probe_region =
            RegionProbe::over_rect(sim.mesh(), 400e-9, 0.0, 420e-9, 20e-9, Component::X);
        let mut probe = DftProbe::new(probe_region, 10e9);
        // Let the front arrive, then measure 2 periods.
        sim.run(1.5e-9).unwrap();
        let sample_dt = 1.0 / (10e9 * 32.0);
        sim.run_sampled(2.0 / 10e9, sample_dt, |t, s| {
            probe.sample(t, s.magnetization());
        })
        .unwrap();
        assert!(
            probe.amplitude() > 1e-7,
            "wave did not reach the probe: A = {}",
            probe.amplitude()
        );
    }

    #[test]
    fn shape_carves_geometry_and_build_rejects_empty() {
        let ok = fecob_strip(16, 8)
            .shape(Rect::new(0.0, 0.0, 40e-9, 40e-9))
            .build()
            .unwrap();
        assert!(ok.mesh().magnetic_cell_count() > 0);
        assert!(ok.mesh().magnetic_cell_count() < ok.mesh().cell_count());

        let err = fecob_strip(16, 8)
            .shape(Rect::new(1.0, 1.0, 2.0, 2.0)) // far outside
            .build();
        assert!(matches!(err, Err(MagnumError::InvalidConfig { .. })));
    }

    #[test]
    fn custom_damping_map_length_is_validated() {
        let err = fecob_strip(4, 4).damping_map(vec![0.1; 3]).build();
        assert!(matches!(err, Err(MagnumError::InvalidConfig { .. })));
    }

    #[test]
    fn invalid_time_step_is_rejected() {
        assert!(fecob_strip(4, 4).time_step(-1e-12).build().is_err());
        assert!(fecob_strip(4, 4).time_step(f64::NAN).build().is_err());
        let mut sim = fecob_strip(4, 4).build().unwrap();
        assert!(sim.set_time_step(0.0).is_err());
        assert!(sim.set_time_step(1e-13).is_ok());
    }

    #[test]
    fn zero_initial_direction_is_rejected() {
        assert!(fecob_strip(4, 4)
            .uniform_magnetization(Vec3::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn thermal_simulation_jitters_but_stays_bounded() {
        let mut sim = fecob_strip(8, 4)
            .temperature(300.0)
            .seed(11)
            .integrator(IntegratorKind::Heun)
            .build()
            .unwrap();
        sim.run(20e-12).unwrap();
        let mean = sim.magnetization_mean();
        // Thermal agitation tilts m away from ẑ but not catastrophically.
        assert!(mean.z > 0.9, "thermal run destabilized the film: {mean}");
        assert!(
            (mean - Vec3::Z).norm() > 1e-9,
            "thermal field had no effect at 300 K"
        );
    }

    #[test]
    fn run_sampled_takes_exact_sample_count() {
        // duration = 10 dt, interval = 2 dt → samples at k·2dt for
        // k = 0..=5: exactly ⌊duration/interval⌋ + 1 = 6 calls, with the
        // final one at t_end (no double invocation, no drift).
        let mut sim = fecob_strip(4, 4).build().unwrap();
        let dt = sim.time_step();
        let mut times = Vec::new();
        sim.run_sampled(dt * 10.0, dt * 2.0, |t, _| times.push(t))
            .unwrap();
        assert_eq!(times.len(), 6, "sample times: {times:?}");
        for (k, &t) in times.iter().enumerate() {
            let expected = k as f64 * 2.0 * dt;
            assert!(
                (t - expected).abs() < 1e-3 * dt,
                "sample {k} drifted: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn run_sampled_non_multiple_duration_samples_floor_plus_one() {
        // duration = 5 dt, interval = 2 dt → samples at 0, 2dt, 4dt only;
        // the next scheduled sample (6dt) is past t_end, so no trailing
        // call fires and the observer runs exactly ⌊5/2⌋ + 1 = 3 times.
        let mut sim = fecob_strip(4, 4).build().unwrap();
        let dt = sim.time_step();
        let mut calls = 0;
        sim.run_sampled(dt * 5.0, dt * 2.0, |_, _| calls += 1)
            .unwrap();
        assert_eq!(calls, 3, "observer called {calls} times");
    }

    #[test]
    fn run_sampled_second_call_does_not_drift() {
        // Sampling must anchor to the *current* time, not t = 0: a second
        // run_sampled call on the same simulation gets the same cadence.
        let mut sim = fecob_strip(4, 4).build().unwrap();
        let dt = sim.time_step();
        sim.run(dt * 3.0).unwrap();
        let t0 = sim.time();
        let mut times = Vec::new();
        sim.run_sampled(dt * 4.0, dt * 2.0, |t, _| times.push(t))
            .unwrap();
        assert_eq!(times.len(), 3, "sample times: {times:?}");
        for (k, &t) in times.iter().enumerate() {
            let expected = t0 + k as f64 * 2.0 * dt;
            assert!(
                (t - expected).abs() < 1e-3 * dt,
                "sample {k} drifted: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn run_sampled_rejects_bad_interval() {
        let mut sim = fecob_strip(4, 4).build().unwrap();
        let dt = sim.time_step();
        assert!(sim.run_sampled(dt, 0.0, |_, _| {}).is_err());
        assert!(sim.run_sampled(dt, -dt, |_, _| {}).is_err());
        assert!(sim.run_sampled(dt, f64::NAN, |_, _| {}).is_err());
    }

    #[test]
    fn thermal_run_requires_heun_unless_overridden() {
        // Explicit non-Heun integrator at T > 0 is rejected...
        let err = fecob_strip(4, 4)
            .temperature(300.0)
            .integrator(IntegratorKind::RungeKutta4)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, MagnumError::InvalidConfig { .. }),
            "unexpected error: {err:?}"
        );
        // ...unless explicitly permitted.
        assert!(fecob_strip(4, 4)
            .temperature(300.0)
            .integrator(IntegratorKind::RungeKutta4)
            .allow_non_stratonovich()
            .build()
            .is_ok());
    }

    #[test]
    fn thermal_run_defaults_to_heun() {
        let sim = fecob_strip(4, 4).temperature(300.0).build().unwrap();
        assert_eq!(sim.integrator.name(), "heun");
        // Deterministic runs keep the RK4 default.
        let sim = fecob_strip(4, 4).build().unwrap();
        assert_eq!(sim.integrator.name(), "rk4");
    }

    #[test]
    fn builder_threads_are_plumbed_through() {
        // An explicit builder value wins over any environment setting —
        // with the small-grid clamp disabled, since a 32-cell strip is
        // far below the default cells-per-thread threshold.
        let sim = fecob_strip(8, 4)
            .threads(3)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        assert_eq!(sim.threads(), 3);
        // Default: serial, unless the MAGNUM_THREADS environment variable
        // overrides it (the CI gate re-runs this suite with it set).
        let sim = fecob_strip(8, 4).build().unwrap();
        match std::env::var("MAGNUM_THREADS") {
            Err(_) => assert_eq!(sim.threads(), 1),
            Ok(_) => assert!(sim.threads() >= 1),
        }
        // Thread count is capped by the cell count.
        let sim = fecob_strip(2, 2)
            .threads(64)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        assert!(sim.threads() <= 4);
    }

    #[test]
    fn small_grids_take_the_serial_arm_by_default() {
        // BENCH_rhs regression: at 4096 cells the parallel sweep loses to
        // serial, so a requested thread count on a sub-threshold grid must
        // clamp to 1 unless the caller opts out.
        let sim = fecob_strip(64, 64).threads(4).build().unwrap();
        assert_eq!(sim.threads(), 1, "sub-threshold grid must run serial");
        // A custom threshold scales the clamp: 4096 cells / 1024 = 4.
        let sim = fecob_strip(64, 64)
            .threads(8)
            .min_cells_per_thread(1024)
            .build()
            .unwrap();
        assert_eq!(sim.threads(), 4);
        // Opting out honours the request verbatim.
        let sim = fecob_strip(64, 64)
            .threads(4)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        assert_eq!(sim.threads(), 4);
    }

    #[test]
    fn absorbing_frame_is_accepted() {
        let sim = fecob_strip(16, 16)
            .absorbing_frame(AbsorbingFrame::new(4, 0.5))
            .build()
            .unwrap();
        // The builder wired the map: max damping at corner exceeds base.
        assert!(sim.system.alpha[0] > 0.004);
    }
}
