//! # magnum — a finite-difference micromagnetic solver
//!
//! `magnum` is a from-scratch CPU reimplementation of the micromagnetic
//! machinery the DATE 2021 paper *"Fan-out of 2 Triangle Shape Spin Wave
//! Logic Gates"* obtained from MuMax3: it integrates the
//! Landau–Lifshitz–Gilbert (LLG) equation on a finite-difference mesh with
//! exchange, uniaxial anisotropy, Zeeman, demagnetization and thermal field
//! contributions, and provides the excitation antennas, absorbing
//! boundaries and probes needed to simulate spin-wave logic devices.
//!
//! The solver is deliberately simulator-grade rather than GPU-grade: it is
//! deterministic, dependency-light and sized for waveguide-scale devices
//! (10⁴–10⁵ cells), which is what the paper's gate geometries need.
//!
//! ## Quick example
//!
//! ```
//! use magnum::prelude::*;
//!
//! # fn main() -> Result<(), magnum::MagnumError> {
//! // A 64 x 8 cell permalloy-like strip, 5 nm cells, 1 nm thick.
//! let mesh = Mesh::new(64, 8, [5e-9, 5e-9, 1e-9])?;
//! let material = Material::builder()
//!     .saturation_magnetization(800e3)
//!     .exchange_stiffness(13e-12)
//!     .gilbert_damping(0.01)
//!     .build()?;
//! let mut sim = Simulation::builder(mesh, material)
//!     .uniform_magnetization(Vec3::Z)
//!     .demag(DemagMethod::ThinFilmLocal)
//!     .build()?;
//! sim.run(10e-12)?;
//! assert!((sim.magnetization_mean().norm() - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod damping;
pub mod error;
pub mod excitation;
pub mod fft;
pub mod field;
pub mod field3;
pub mod geometry;
pub mod llg;
pub mod material;
pub mod math;
pub mod mesh;
pub mod par;
pub mod probe;
pub mod sim;
pub mod solver;

pub use batch::BatchedSimulation;
pub use error::MagnumError;
pub use field3::{BatchMemberView, Field3, FieldBatch, MagRead};
pub use material::{Material, MaterialBuilder};
pub use math::{Complex64, Vec3};
pub use mesh::{CellIndex, Mesh};
pub use sim::{Relaxation, Simulation, SimulationBuilder};

/// Commonly used items, re-exported for ergonomic glob imports.
pub mod prelude {
    pub use crate::batch::BatchedSimulation;
    pub use crate::damping::AbsorbingFrame;
    pub use crate::excitation::{Antenna, Drive};
    pub use crate::field::demag::DemagMethod;
    pub use crate::field::thermal::ThermalField;
    pub use crate::field3::{Field3, MagRead};
    pub use crate::geometry::Shape;
    pub use crate::material::Material;
    pub use crate::math::{Complex64, Vec3};
    pub use crate::mesh::Mesh;
    pub use crate::probe::{DftProbe, RegionProbe, Snapshot, SpectrumProbe};
    pub use crate::sim::{Relaxation, Simulation, SimulationBuilder};
    pub use crate::solver::Integrator;
    pub use crate::MagnumError;
}

/// Vacuum permeability μ₀ in T·m/A.
pub const MU0: f64 = 1.256_637_061_435_917e-6;

/// Gyromagnetic ratio of the electron |γ| in rad/(s·T).
///
/// The LLG precession term uses |γ|·μ₀ with fields expressed in A/m.
pub const GAMMA: f64 = 1.760_859_630_23e11;

/// Boltzmann constant in J/K (used by the thermal field).
pub const KB: f64 = 1.380_649e-23;
