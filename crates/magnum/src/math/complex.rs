//! Minimal complex arithmetic for DFT probes and the FFT kernel.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used by [`crate::fft`] and by the single-bin DFT probes that extract
/// spin-wave amplitude and phase at the drive frequency.
///
/// ```
/// use magnum::Complex64;
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::from_polar(2.0, std::f64::consts::PI).re + 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Magnitude |z|.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude |z|².
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in (−π, π].
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns an infinite value when `self` is zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// True if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // z / w is defined as z * conj(w) / |w|^2, so multiplying by the
    // reciprocal is the operation itself, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, Add::add)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(3.0, 0.7);
        assert!((z.abs() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_quarter_turn() {
        let z = Complex64::cis(FRAC_PI_2);
        assert!(z.re.abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex64::from_polar(2.0, 1.1);
        assert!((z.conj().arg() + 1.1).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(0.25, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn recip_of_one_is_one() {
        assert_eq!(Complex64::ONE.recip(), Complex64::ONE);
    }

    #[test]
    fn phase_of_negative_real_is_pi() {
        let z = Complex64::from_polar(2.0, PI);
        assert!((z.arg().abs() - PI).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let zs = [Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let s: Complex64 = zs.into_iter().sum();
        assert_eq!(s, Complex64::new(2.0, 2.0));
    }

    #[test]
    fn abs_sq_matches_abs() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.abs_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
