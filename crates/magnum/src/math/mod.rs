//! Small math toolbox: 3-vectors and complex numbers.
//!
//! The solver state is an array of [`Vec3`]; probes accumulate
//! [`Complex64`] amplitudes. Both are deliberately minimal — only the
//! operations the solver and the analysis code actually use.

mod complex;
mod rng;
mod vec3;

pub use complex::Complex64;
pub use rng::{GaussianSource, SplitMix64};
pub use vec3::Vec3;
