//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The workspace builds with no network access, so it cannot pull the
//! `rand` crate; the only consumer of randomness in the solver is the
//! stochastic thermal field (and, indirectly, the edge-roughness
//! geometry), which needs nothing more than a seedable, reproducible
//! uniform stream plus a Gaussian transform. [`SplitMix64`] provides the
//! former — the well-known 64-bit finalizer-based generator from Steele,
//! Lea & Flood ("Fast splittable pseudorandom number generators",
//! OOPSLA 2014) with a period of 2⁶⁴ and excellent equidistribution for
//! this purpose — and [`GaussianSource`] layers Box–Muller on top.
//!
//! The same seed always reproduces the same stream, on every platform:
//! the algorithm only uses wrapping integer arithmetic and exact binary
//! floating-point constants.

/// SplitMix64 pseudo-random generator: one `u64` of state, one output
/// per `next` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed (including 0) yields
    /// a full-period stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the high bits of SplitMix64 are the
        // best-mixed ones.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Standard-normal variates via the Box–Muller transform over a
/// [`SplitMix64`] stream.
#[derive(Debug, Clone)]
pub struct GaussianSource {
    rng: SplitMix64,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl GaussianSource {
    /// Creates a seeded source; the same seed reproduces the same
    /// variate sequence.
    pub fn new(seed: u64) -> Self {
        GaussianSource {
            rng: SplitMix64::new(seed),
            spare: None,
        }
    }

    /// The next standard-normal variate (mean 0, variance 1).
    pub fn next_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = self.rng.next_f64();
            let v = self.rng.next_f64();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * v;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical SplitMix64 algorithm:
        // guards against accidental drift that would silently change
        // every seeded simulation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(rng.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_covers_it() {
        let mut rng = SplitMix64::new(7);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01, "min {min} suspiciously large");
        assert!(max > 0.99, "max {max} suspiciously small");
    }

    #[test]
    fn gaussian_moments_are_standard() {
        let mut g = GaussianSource::new(99);
        let n = 100_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = g.next_normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_is_seed_reproducible() {
        let mut a = GaussianSource::new(5);
        let mut b = GaussianSource::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_normal(), b.next_normal());
        }
    }
}
