//! Three-component double-precision vector.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-vector of `f64`, used for magnetization directions and magnetic
/// fields (A/m).
///
/// ```
/// use magnum::Vec3;
/// let m = Vec3::new(0.0, 0.0, 1.0);
/// assert_eq!(m.cross(Vec3::X), Vec3::Y);
/// assert!((m.norm() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector instead of dividing by
    /// zero; the solver uses this to keep vacuum cells inert.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Normalizes in place; zero vectors are left untouched.
    #[inline]
    pub fn normalize(&mut self) {
        *self = self.normalized();
    }

    /// Component-wise (Hadamard) product.
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// True if any component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.x.is_nan() || self.y.is_nan() || self.z.is_nan()
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The component at `axis` 0, 1 or 2.
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    #[inline]
    pub fn component(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 axis out of range: {axis}"),
        }
    }

    /// Linear interpolation `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Angle in radians between this vector and `other` (both non-zero).
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.x *= rhs;
        self.y *= rhs;
        self.z *= rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.x /= rhs;
        self.y /= rhs;
        self.z /= rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, axis: usize) -> &f64 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 axis out of range: {axis}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> [f64; 3] {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_cross_products_are_cyclic() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 0.25);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn cross_is_orthogonal_to_operands() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 0.25);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 0.5);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(2.0 * a, a + a);
        assert_eq!(a / 1.0, a);
        assert_eq!(-a + a, Vec3::ZERO);
    }

    #[test]
    fn assign_operators_match_binary() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, -1.0, 2.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
        c *= 3.0;
        assert_eq!(c, a * 3.0);
        c /= 3.0;
        assert!((c - a).norm() < 1e-14);
    }

    #[test]
    fn component_and_index_agree() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        for axis in 0..3 {
            assert_eq!(v.component(axis), v[axis]);
        }
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn component_panics_out_of_range() {
        Vec3::X.component(3);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 1.0, 2.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), (a + b) / 2.0);
    }

    #[test]
    fn angle_between_orthogonal_axes() {
        assert!((Vec3::X.angle_to(Vec3::Y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(Vec3::X.angle_to(Vec3::X).abs() < 1e-7);
        assert!((Vec3::X.angle_to(-Vec3::X) - std::f64::consts::PI).abs() < 1e-7);
    }

    #[test]
    fn array_conversions_round_trip() {
        let v = Vec3::new(1.5, 2.5, -3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z, Vec3::X];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, Vec3::new(2.0, 1.0, 1.0));
    }

    #[test]
    fn hadamard_product() {
        let a = Vec3::new(2.0, 3.0, 4.0);
        let b = Vec3::new(0.5, 2.0, -1.0);
        assert_eq!(a.hadamard(b), Vec3::new(1.0, 6.0, -4.0));
    }

    #[test]
    fn nan_and_finite_detection() {
        assert!(!Vec3::X.is_nan());
        assert!(Vec3::new(f64::NAN, 0.0, 0.0).is_nan());
        assert!(Vec3::X.is_finite());
        assert!(!Vec3::new(f64::INFINITY, 0.0, 0.0).is_finite());
    }
}
