//! The Landau–Lifshitz–Gilbert right-hand side.
//!
//! Equation (1) of the paper in its explicit (Landau–Lifshitz) form:
//!
//! `dm/dt = −γμ₀/(1+α²)·[ m×H_eff + α·m×(m×H_eff) ]`
//!
//! with per-cell damping α (so absorbing frames are just a damping map)
//! and `H_eff` the sum of all [`crate::field::FieldTerm`]s, the antenna
//! fields and the per-step thermal realization.
//!
//! ## Fused parallel evaluation
//!
//! The hot path does **not** run one full-mesh pass per field term.
//! At construction every local term is compiled to a [`FusedTerm`] op, the
//! magnetic cells are gathered into an index list with a precomputed
//! 4-neighbour stencil, and antenna coverage is flattened into a CSR map.
//! `rhs` then makes a single pass over the magnetic cells — evaluating
//! every op, the antenna drives, the thermal field and the LLG torque per
//! cell — split into contiguous blocks executed by the simulation's
//! [`WorkerTeam`]. Each cell's arithmetic is independent of the block
//! partition and each block writes a disjoint output range, so results
//! are bitwise identical for any thread count. Non-local terms (the FFT
//! demag) run in a pre-pass through [`FieldTerm::accumulate_par`] on the
//! same worker team, using per-term scratch owned by the system (no
//! locks, no per-call allocation); the reference paths (`effective_field`,
//! `max_torque`, energy accounting) use the terms' thread-safe
//! `accumulate` fallback, which is bitwise identical by contract.

use crate::excitation::Antenna;
use crate::field::{FieldTerm, FusedTerm};
use crate::math::Vec3;
use crate::par::{chunk_bounds, SendPtr, WorkerTeam};
use crate::MU0;

/// Sentinel for "no neighbour" (mesh edge or vacuum) in the stencil.
const NO_NEIGHBOUR: u32 = u32::MAX;

/// One contiguous slice of the mesh assigned to a worker block.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Flat cell-index range `[start, end)` — used to zero vacuum cells.
    flat: (usize, usize),
    /// Range into the magnetic-cell list — the actual compute work.
    list: (usize, usize),
}

/// The precompiled single-pass kernel (see module docs).
#[derive(Debug)]
struct FusedKernel {
    /// Flat indices of the magnetic cells, ascending.
    cells: Vec<u32>,
    /// Per magnetic cell: `[left, right, down, up]` neighbour flat index,
    /// or [`NO_NEIGHBOUR`] where the stencil hits an edge or vacuum.
    nbrs: Vec<[u32; 4]>,
    /// Fused ops in field-term order.
    ops: Vec<FusedTerm>,
    /// Indices into `terms` of non-fusable terms (serial pre-pass).
    unfused: Vec<usize>,
    /// CSR offsets into `ant_ids`, one entry per magnetic cell plus one.
    /// Empty when there are no antennas.
    ant_off: Vec<u32>,
    /// Antenna indices covering each magnetic cell.
    ant_ids: Vec<u32>,
    blocks: Vec<Block>,
}

/// Everything needed to assemble an [`LlgSystem`].
pub(crate) struct SystemSpec {
    pub terms: Vec<Box<dyn FieldTerm>>,
    pub antennas: Vec<Antenna>,
    /// Thermal buffer (empty at T = 0, one entry per cell otherwise).
    pub thermal: Vec<Vec3>,
    /// Per-cell Gilbert damping.
    pub alpha: Vec<f64>,
    /// |γ| in rad/(s·T).
    pub gamma: f64,
    pub mask: Vec<bool>,
    /// Mesh row length (cells per row).
    pub nx: usize,
    /// Worker-team size (1 = serial).
    pub threads: usize,
}

impl SystemSpec {
    /// Compiles the fused kernel and spins up the worker team.
    pub(crate) fn build(self) -> LlgSystem {
        let SystemSpec {
            terms,
            antennas,
            thermal,
            alpha,
            gamma,
            mask,
            nx,
            threads,
        } = self;
        let n = mask.len();
        assert!(n > 0, "system must have at least one cell");
        assert!(
            nx > 0 && n % nx == 0,
            "mask length {n} is not a multiple of the row length {nx}"
        );
        assert!(n <= u32::MAX as usize, "mesh too large for u32 indexing");
        assert_eq!(alpha.len(), n, "damping map length mismatch");

        let cells: Vec<u32> = (0..n).filter(|&i| mask[i]).map(|i| i as u32).collect();
        let nbrs: Vec<[u32; 4]> = cells
            .iter()
            .map(|&c| {
                let i = c as usize;
                let ix = i % nx;
                let present = |cond: bool, j: usize| {
                    if cond && mask[j] {
                        j as u32
                    } else {
                        NO_NEIGHBOUR
                    }
                };
                [
                    present(ix > 0, i.wrapping_sub(1)),
                    present(ix + 1 < nx, i + 1),
                    present(i >= nx, i.wrapping_sub(nx)),
                    present(i + nx < n, i + nx),
                ]
            })
            .collect();

        // Fused ops in term order, dropping ops the term-by-term path
        // would also skip (`accumulate` early returns).
        let ops: Vec<FusedTerm> = terms
            .iter()
            .filter_map(|t| t.fused())
            .filter(|op| match *op {
                FusedTerm::Uniform(f) => f != Vec3::ZERO,
                FusedTerm::Uniaxial { coeff, .. } => coeff != 0.0,
                _ => true,
            })
            .collect();
        let unfused: Vec<usize> = terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.fused().is_none())
            .map(|(i, _)| i)
            .collect();

        let threads = threads.clamp(1, n);
        let blocks = (0..threads)
            .map(|b| Block {
                flat: chunk_bounds(n, threads, b),
                list: chunk_bounds(cells.len(), threads, b),
            })
            .collect();

        let term_scratch = terms.iter().map(|t| t.make_scratch()).collect();
        let mut system = LlgSystem {
            terms,
            term_scratch,
            antennas,
            thermal,
            alpha,
            gamma,
            mask,
            kernel: FusedKernel {
                cells,
                nbrs,
                ops,
                unfused,
                ant_off: Vec::new(),
                ant_ids: Vec::new(),
                blocks,
            },
            team: WorkerTeam::new(threads),
        };
        system.rebuild_antenna_map();
        system
    }
}

/// The assembled LLG system: field terms, antennas, damping map and the
/// frozen thermal-field buffer for the current step.
///
/// Constructed by [`crate::sim::SimulationBuilder`]; integrators only call
/// [`LlgSystem::rhs`].
pub struct LlgSystem {
    pub(crate) terms: Vec<Box<dyn FieldTerm>>,
    /// Per-term hot-path scratch (`None` for terms without any), indexed
    /// like `terms` and threaded through `accumulate_par` by `rhs`.
    term_scratch: Vec<Option<Box<dyn std::any::Any + Send + Sync>>>,
    pub(crate) antennas: Vec<Antenna>,
    /// Thermal field realization for the current step (all zeros at T=0).
    pub(crate) thermal: Vec<Vec3>,
    /// Per-cell Gilbert damping.
    pub(crate) alpha: Vec<f64>,
    /// |γ| in rad/(s·T).
    pub(crate) gamma: f64,
    pub(crate) mask: Vec<bool>,
    kernel: FusedKernel,
    team: WorkerTeam,
}

impl LlgSystem {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True if the system has no cells (never the case after a successful
    /// build).
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// The worker team shared by every parallel region of this system.
    pub(crate) fn par(&self) -> &WorkerTeam {
        &self.team
    }

    /// Registers an antenna and recompiles the per-cell antenna map.
    pub(crate) fn add_antenna(&mut self, antenna: Antenna) {
        self.antennas.push(antenna);
        self.rebuild_antenna_map();
    }

    /// Removes all antennas.
    pub(crate) fn clear_antennas(&mut self) {
        self.antennas.clear();
        self.rebuild_antenna_map();
    }

    /// Flattens antenna coverage into a CSR (cell → antenna ids) map.
    ///
    /// `relax` temporarily empties `antennas` without touching the map —
    /// the hot path skips antenna evaluation entirely while the list is
    /// empty, so the stale map is never read.
    fn rebuild_antenna_map(&mut self) {
        self.kernel.ant_off.clear();
        self.kernel.ant_ids.clear();
        if self.antennas.is_empty() {
            return;
        }
        let n = self.mask.len();
        let mut per_cell: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (ai, antenna) in self.antennas.iter().enumerate() {
            for &c in antenna.cells() {
                if c < n {
                    per_cell[c].push(ai as u32);
                }
            }
        }
        self.kernel.ant_off.reserve(self.kernel.cells.len() + 1);
        self.kernel.ant_off.push(0);
        for &c in &self.kernel.cells {
            self.kernel.ant_ids.extend_from_slice(&per_cell[c as usize]);
            self.kernel.ant_off.push(self.kernel.ant_ids.len() as u32);
        }
    }

    /// Per-antenna drive fields at time `t` (empty when no antennas).
    fn antenna_fields(&self, t: f64) -> Vec<Vec3> {
        if self.antennas.is_empty() {
            return Vec::new();
        }
        self.antennas
            .iter()
            .map(|a| a.direction() * a.drive().value(t))
            .collect()
    }

    /// Effective field at one magnetic cell, assembled from the serial
    /// pre-pass (`base`), the fused ops, the antenna drives and the
    /// thermal buffer — in exactly the order the term-by-term path uses.
    #[inline]
    fn fused_field(
        &self,
        ci: usize,
        i: usize,
        mi: Vec3,
        m: &[Vec3],
        base: Option<&[Vec3]>,
        ant_fields: &[Vec3],
    ) -> Vec3 {
        let mut h = match base {
            Some(b) => b[i],
            None => Vec3::ZERO,
        };
        for op in &self.kernel.ops {
            match *op {
                FusedTerm::Exchange { coeff_x, coeff_y } => {
                    let nb = self.kernel.nbrs[ci];
                    let mut acc = Vec3::ZERO;
                    if nb[0] != NO_NEIGHBOUR {
                        acc += (m[nb[0] as usize] - mi) * coeff_x;
                    }
                    if nb[1] != NO_NEIGHBOUR {
                        acc += (m[nb[1] as usize] - mi) * coeff_x;
                    }
                    if nb[2] != NO_NEIGHBOUR {
                        acc += (m[nb[2] as usize] - mi) * coeff_y;
                    }
                    if nb[3] != NO_NEIGHBOUR {
                        acc += (m[nb[3] as usize] - mi) * coeff_y;
                    }
                    h += acc;
                }
                FusedTerm::Uniaxial { coeff, axis } => {
                    h += axis * (coeff * mi.dot(axis));
                }
                FusedTerm::ThinFilm { ms } => {
                    h.z -= ms * mi.z;
                }
                FusedTerm::Uniform(f) => {
                    h += f;
                }
            }
        }
        if !ant_fields.is_empty() {
            let a0 = self.kernel.ant_off[ci] as usize;
            let a1 = self.kernel.ant_off[ci + 1] as usize;
            for &ai in &self.kernel.ant_ids[a0..a1] {
                let f = ant_fields[ai as usize];
                if f != Vec3::ZERO {
                    h += f;
                }
            }
        }
        if !self.thermal.is_empty() {
            h += self.thermal[i];
        }
        h
    }

    /// The LLG torque at cell `i` for field `h`.
    #[inline]
    fn torque(&self, i: usize, mi: Vec3, h: Vec3) -> Vec3 {
        let alpha = self.alpha[i];
        let prefactor = -self.gamma * MU0 / (1.0 + alpha * alpha);
        let mxh = mi.cross(h);
        let mxmxh = mi.cross(mxh);
        (mxh + mxmxh * alpha) * prefactor
    }

    /// Runs the non-fusable terms into `h` (zeroing it first) via the
    /// thread-safe reference path. Returns whether anything was written.
    fn unfused_prepass(&self, m: &[Vec3], t: f64, h: &mut [Vec3]) -> bool {
        if self.kernel.unfused.is_empty() {
            return false;
        }
        h.fill(Vec3::ZERO);
        for &ti in &self.kernel.unfused {
            self.terms[ti].accumulate(m, t, h);
        }
        true
    }

    /// Hot-path variant of [`LlgSystem::unfused_prepass`]: runs each
    /// non-fusable term through `accumulate_par` with the worker team and
    /// the term's own scratch — lock-free and allocation-free, bitwise
    /// identical to the reference pre-pass for any team size.
    fn unfused_prepass_par(&mut self, m: &[Vec3], t: f64, h: &mut [Vec3]) -> bool {
        if self.kernel.unfused.is_empty() {
            return false;
        }
        h.fill(Vec3::ZERO);
        let LlgSystem {
            terms,
            term_scratch,
            kernel,
            team,
            ..
        } = self;
        for &ti in &kernel.unfused {
            let scratch = term_scratch[ti]
                .as_mut()
                .map(|s| &mut **s as &mut (dyn std::any::Any + Send + Sync));
            terms[ti].accumulate_par(m, t, h, team, scratch);
        }
        true
    }

    /// Computes the effective field (A/m) into `h` at time `t`.
    ///
    /// This is the term-by-term reference path (used by energy accounting,
    /// probes and tests); the integrator hot loop uses the fused kernel in
    /// [`LlgSystem::rhs`] instead.
    pub fn effective_field(&self, m: &[Vec3], t: f64, h: &mut [Vec3]) {
        h.fill(Vec3::ZERO);
        for term in &self.terms {
            term.accumulate(m, t, h);
        }
        for antenna in &self.antennas {
            antenna.accumulate(t, h);
        }
        if !self.thermal.is_empty() {
            for (hi, th) in h.iter_mut().zip(self.thermal.iter()) {
                *hi += *th;
            }
        }
    }

    /// Evaluates `dm/dt` into `dmdt`, using `h_scratch` for the field.
    ///
    /// Vacuum cells get zero torque.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if buffer lengths mismatch.
    pub fn rhs(&mut self, m: &[Vec3], t: f64, dmdt: &mut [Vec3], h_scratch: &mut [Vec3]) {
        debug_assert_eq!(m.len(), self.len());
        debug_assert_eq!(dmdt.len(), self.len());
        debug_assert_eq!(h_scratch.len(), self.len());
        let wrote_base = self.unfused_prepass_par(m, t, h_scratch);
        // The mutable phase (per-term scratch) is over; the fused region
        // only reads the system.
        let this: &LlgSystem = &*self;
        let base = if wrote_base { Some(&*h_scratch) } else { None };
        let ant_fields = this.antenna_fields(t);
        let out = SendPtr::new(dmdt.as_mut_ptr());
        this.team.run(&|b| {
            let block = this.kernel.blocks[b];
            // Vacuum cells in this block's flat range get zero torque;
            // magnetic cells are written by the list loop below. The two
            // partitions are disjoint per cell, so every `dmdt` element is
            // written exactly once across all blocks.
            for i in block.flat.0..block.flat.1 {
                if !this.mask[i] {
                    // Safety: flat ranges are disjoint across blocks and
                    // only vacuum cells are touched here.
                    unsafe { *out.add(i) = Vec3::ZERO };
                }
            }
            for ci in block.list.0..block.list.1 {
                let i = this.kernel.cells[ci] as usize;
                let mi = m[i];
                let h = this.fused_field(ci, i, mi, m, base, &ant_fields);
                // Safety: list ranges are disjoint across blocks and only
                // magnetic cells are touched here.
                unsafe { *out.add(i) = this.torque(i, mi, h) };
            }
        });
    }

    /// Maximum torque |dm/dt| over all cells, in 1/s — used as a
    /// convergence criterion by [`crate::sim::Simulation::relax`].
    ///
    /// Evaluated block-parallel with a per-block running maximum, so no
    /// full-mesh buffers are allocated (the old implementation allocated
    /// two per call); only a non-fusable term forces one field buffer.
    pub fn max_torque(&self, m: &[Vec3], t: f64) -> f64 {
        let mut pre: Vec<Vec3> = Vec::new();
        let base = if self.kernel.unfused.is_empty() {
            None
        } else {
            pre.resize(self.len(), Vec3::ZERO);
            self.unfused_prepass(m, t, &mut pre);
            Some(&pre[..])
        };
        let ant_fields = self.antenna_fields(t);
        let partials = self.team.map_blocks(|b| {
            let block = self.kernel.blocks[b];
            let mut local: f64 = 0.0;
            for ci in block.list.0..block.list.1 {
                let i = self.kernel.cells[ci] as usize;
                let mi = m[i];
                let h = self.fused_field(ci, i, mi, m, base, &ant_fields);
                local = local.max(self.torque(i, mi, h).norm());
            }
            local
        });
        partials.into_iter().fold(0.0, f64::max)
    }

    /// Sum of the energies of all conservative field terms, in joules.
    pub fn energy(&self, m: &[Vec3], t: f64, ms: f64, cell_volume: f64) -> f64 {
        self.terms
            .iter()
            .map(|term| term.energy(m, t, ms, cell_volume))
            .sum()
    }
}

impl std::fmt::Debug for LlgSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlgSystem")
            .field("cells", &self.len())
            .field(
                "terms",
                &self.terms.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("antennas", &self.antennas.len())
            .field("gamma", &self.gamma)
            .field("threads", &self.team.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excitation::Drive;
    use crate::field::anisotropy::UniaxialAnisotropy;
    use crate::field::demag::ThinFilmDemag;
    use crate::field::exchange::Exchange;
    use crate::field::zeeman::Zeeman;
    use crate::material::Material;
    use crate::mesh::Mesh;
    use crate::GAMMA;

    fn single_cell_system(alpha: f64, field: Vec3) -> LlgSystem {
        SystemSpec {
            terms: vec![Box::new(Zeeman::uniform(field))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![alpha],
            gamma: GAMMA,
            mask: vec![true],
            nx: 1,
            threads: 1,
        }
        .build()
    }

    #[test]
    fn torque_is_zero_at_equilibrium() {
        let sys = single_cell_system(0.01, Vec3::Z * 1e5);
        let m = vec![Vec3::Z];
        assert!(sys.max_torque(&m, 0.0) < 1e-6);
    }

    #[test]
    fn undamped_motion_is_pure_precession() {
        // α = 0: dm/dt ⊥ m and ⊥ H; |dm/dt| = γμ₀|H| sinθ.
        let h0 = 1e5;
        let mut sys = single_cell_system(0.0, Vec3::Z * h0);
        let m = vec![Vec3::X];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // m×H = X×Z·h0 = -Y·h0; prefactor −γμ₀ ⇒ dm/dt = +γμ₀h0·Y
        let expected = GAMMA * MU0 * h0;
        assert!((dmdt[0].y - expected).abs() / expected < 1e-12);
        assert!(dmdt[0].x.abs() < 1e-3);
        assert!(dmdt[0].z.abs() < 1e-3);
    }

    #[test]
    fn damping_pulls_towards_field() {
        let mut sys = single_cell_system(0.1, Vec3::Z * 1e5);
        let m = vec![Vec3::X];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // The damping term rotates m towards +z.
        assert!(
            dmdt[0].z > 0.0,
            "damped motion must approach the field axis"
        );
    }

    #[test]
    fn torque_preserves_magnitude() {
        // dm/dt ⊥ m always, so d|m|²/dt = 2 m·dm/dt = 0.
        let mut sys = single_cell_system(0.25, Vec3::new(3e4, -2e4, 5e4));
        let m = vec![Vec3::new(0.6, 0.64, 0.48).normalized()];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        assert!(m[0].dot(dmdt[0]).abs() < 1e-3);
    }

    #[test]
    fn vacuum_cells_have_zero_torque() {
        let mut sys = SystemSpec {
            terms: vec![Box::new(Zeeman::uniform(Vec3::Z * 1e5))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![0.01],
            gamma: GAMMA,
            mask: vec![false],
            nx: 1,
            threads: 1,
        }
        .build();
        let m = vec![Vec3::X];
        assert_eq!(sys.max_torque(&m, 0.0), 0.0);
        let mut dmdt = vec![Vec3::X];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        assert_eq!(dmdt[0], Vec3::ZERO, "rhs must overwrite vacuum torque");
    }

    #[test]
    fn thermal_buffer_enters_the_field() {
        let mut sys = single_cell_system(0.01, Vec3::ZERO);
        sys.thermal = vec![Vec3::X * 123.0];
        let m = vec![Vec3::Z];
        let mut h = vec![Vec3::ZERO];
        sys.effective_field(&m, 0.0, &mut h);
        assert!((h[0].x - 123.0).abs() < 1e-12);
        // And the fused path sees it too: torque on m ∥ ẑ under H ∥ x̂.
        assert!(sys.max_torque(&m, 0.0) > 0.0);
    }

    #[test]
    fn higher_damping_slows_precession_rate() {
        // The 1/(1+α²) prefactor reduces the precession component.
        let m = vec![Vec3::X];
        let mut dmdt_lo = vec![Vec3::ZERO];
        let mut dmdt_hi = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        single_cell_system(0.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_lo, &mut h);
        single_cell_system(1.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_hi, &mut h);
        assert!((dmdt_hi[0].y.abs() - dmdt_lo[0].y.abs() / 2.0).abs() < 1.0);
    }

    /// Builds a full multi-term system on a masked mesh with an antenna,
    /// for cross-checking the fused kernel against the reference path.
    fn masked_multiterm_system(threads: usize) -> (LlgSystem, Vec<Vec3>) {
        let mut mesh = Mesh::new(16, 8, [5e-9, 5e-9, 1e-9]).unwrap();
        // Punch some vacuum holes, including on a block boundary.
        mesh.set_magnetic(3, 2, false);
        mesh.set_magnetic(7, 4, false);
        mesh.set_magnetic(0, 0, false);
        let material = Material::fecob();
        let antenna = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            20e-9,
            40e-9,
            Vec3::X,
            Drive::logic_cw(3e3, 10e9, 0.1),
        );
        let n = mesh.cell_count();
        let m: Vec<Vec3> = (0..n)
            .map(|i| {
                if mesh.mask()[i] {
                    Vec3::new(0.1 * (i as f64).sin(), 0.1 * (i as f64).cos(), 1.0).normalized()
                } else {
                    Vec3::ZERO
                }
            })
            .collect();
        let sys = SystemSpec {
            terms: vec![
                Box::new(Exchange::new(&mesh, &material)),
                Box::new(UniaxialAnisotropy::new(&mesh, &material)),
                Box::new(ThinFilmDemag::new(&mesh, &material)),
                Box::new(Zeeman::uniform(Vec3::new(1e3, 0.0, 2e3))),
            ],
            antennas: vec![antenna],
            thermal: Vec::new(),
            alpha: (0..n).map(|i| 0.004 + 1e-5 * i as f64).collect(),
            gamma: material.gamma(),
            mask: mesh.mask().to_vec(),
            nx: mesh.nx(),
            threads,
        }
        .build();
        (sys, m)
    }

    #[test]
    fn fused_rhs_matches_reference_effective_field() {
        let (mut sys, m) = masked_multiterm_system(1);
        let t = 13e-12;
        let n = m.len();
        let mut dmdt = vec![Vec3::ZERO; n];
        let mut scratch = vec![Vec3::ZERO; n];
        sys.rhs(&m, t, &mut dmdt, &mut scratch);
        // Reference: term-by-term field, then the LLG formula.
        let mut h = vec![Vec3::ZERO; n];
        sys.effective_field(&m, t, &mut h);
        for i in 0..n {
            if !sys.mask[i] {
                assert_eq!(dmdt[i], Vec3::ZERO);
                continue;
            }
            let alpha = sys.alpha[i];
            let prefactor = -sys.gamma * MU0 / (1.0 + alpha * alpha);
            let mxh = m[i].cross(h[i]);
            let expected = (mxh + m[i].cross(mxh) * alpha) * prefactor;
            assert_eq!(dmdt[i], expected, "cell {i} diverges from reference");
        }
    }

    #[test]
    fn rhs_is_bitwise_identical_across_thread_counts() {
        let t = 7e-12;
        let (mut serial, m) = masked_multiterm_system(1);
        let n = m.len();
        let mut expected = vec![Vec3::ZERO; n];
        let mut scratch = vec![Vec3::ZERO; n];
        serial.rhs(&m, t, &mut expected, &mut scratch);
        let torque_serial = serial.max_torque(&m, t);
        for threads in [2, 3, 4, 7] {
            let (mut sys, m2) = masked_multiterm_system(threads);
            assert_eq!(m, m2);
            let mut dmdt = vec![Vec3::ZERO; n];
            sys.rhs(&m2, t, &mut dmdt, &mut scratch);
            assert_eq!(dmdt, expected, "threads={threads} diverged");
            assert_eq!(sys.max_torque(&m2, t), torque_serial);
        }
    }

    #[test]
    fn antenna_map_follows_add_and_clear() {
        let (mut sys, m) = masked_multiterm_system(2);
        let t = 11e-12;
        let with_antenna = sys.max_torque(&m, t);
        let saved = std::mem::take(&mut sys.antennas);
        let without = sys.max_torque(&m, t);
        assert_ne!(with_antenna, without, "antenna must influence the torque");
        sys.antennas = saved;
        assert_eq!(sys.max_torque(&m, t), with_antenna);
        sys.clear_antennas();
        assert_eq!(sys.max_torque(&m, t), without);
    }
}
