//! The Landau–Lifshitz–Gilbert right-hand side.
//!
//! Equation (1) of the paper in its explicit (Landau–Lifshitz) form:
//!
//! `dm/dt = −γμ₀/(1+α²)·[ m×H_eff + α·m×(m×H_eff) ]`
//!
//! with per-cell damping α (so absorbing frames are just a damping map)
//! and `H_eff` the sum of all [`crate::field::FieldTerm`]s, the antenna
//! fields and the per-step thermal realization.
//!
//! ## Fused parallel evaluation
//!
//! The hot path does **not** run one full-mesh pass per field term.
//! At construction every local term is compiled to a [`FusedTerm`] op, the
//! magnetic cells are gathered into an index list with a precomputed
//! 4-neighbour stencil, and antenna coverage is flattened into a CSR map.
//! [`LlgSystem::rhs_stage`] then makes a single pass over the magnetic
//! cells — evaluating every op, the antenna drives, the thermal field,
//! the LLG torque *and* the caller's fused stage update per cell — split
//! into contiguous blocks executed by the simulation's [`WorkerTeam`].
//! Each cell's arithmetic is independent of the block partition and each
//! block writes a disjoint output range, so results are bitwise identical
//! for any thread count. Non-local terms (the FFT demag) run in a
//! pre-pass through [`FieldTerm::accumulate_par`] on the same worker
//! team — the whole spectral pipeline (row FFTs, tiled transposes,
//! column FFTs, spectral multiply) decomposes into block-ordered spans
//! on that team — using per-term scratch owned by the system (no locks,
//! no per-call allocation); the reference paths (`effective_field`,
//! `max_torque`, energy accounting) use the terms' thread-safe
//! `accumulate` fallback, which is bitwise identical by contract.
//!
//! ## Single-sweep stage fusion
//!
//! The state and torque buffers are SoA [`Field3`] planes. Integrators
//! pass a `fuse` closure to [`LlgSystem::rhs_stage`]; it is invoked with
//! `(i, k_i)` right after the torque for cell `i` is computed, while the
//! cell is still hot in cache, and typically writes the next stage input
//! (`m + dt·b·k` style combinations) through disjoint-range raw plane
//! pointers. Vacuum cells get `fuse(i, Vec3::ZERO)` so the stage
//! arithmetic covers exactly the same cells the old full-mesh axpy passes
//! did. Every cell is visited once per stage instead of once for the
//! field, once for the torque and once per stage combination.

use crate::excitation::Antenna;
use crate::field::{FieldTerm, FusedTerm};
use crate::field3::{Field3, Field3Ptr, FieldBatch};
use crate::math::Vec3;
use crate::par::{chunk_bounds, WorkerTeam};
use crate::MU0;

/// Sentinel for "no neighbour" (mesh edge or vacuum) in the stencil.
const NO_NEIGHBOUR: u32 = u32::MAX;

/// One contiguous slice of the mesh assigned to a worker block.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Flat cell-index range `[start, end)` — used to zero vacuum cells.
    flat: (usize, usize),
    /// Range into the magnetic-cell list — the actual compute work.
    list: (usize, usize),
    /// Range into [`FusedKernel::segs`] covering `list`.
    segs: (usize, usize),
    /// Whether `flat` contains any vacuum cells (skips the zeroing scan
    /// on full films).
    has_vacuum: bool,
}

/// A contiguous piece of a block's magnetic-cell list: either an interior
/// run — consecutive flat indices whose four neighbours all exist, so the
/// branchless unchecked sweep applies — or a scalar stretch handled by
/// the general (boundary/vacuum-adjacent) path. Splitting the list this
/// way changes nothing about per-cell arithmetic, only which loop body
/// executes it.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// Start index into the magnetic-cell list.
    ci0: u32,
    /// One past the end.
    ci1: u32,
    /// True for interior runs.
    interior: bool,
}

/// Interior runs shorter than this stay in the scalar stretch — the
/// branchless loop only pays off once it amortizes its setup.
const MIN_RUN: usize = 8;

/// Lane-chunk width for the batched interior sweep's split
/// compute/store phases: big enough to cover every realistic batch in
/// one chunk, small enough for comfortable stack buffers.
const INTERIOR_LANES: usize = 16;

/// One plane's exchange accumulation for four consecutive lanes:
/// `(((0 + (m[fi-K]-m)·cx) + (m[fi+K]-m)·cx) + (m[fi-nxK]-m)·cy) +
/// (m[fi+nxK]-m)·cy`, the exact summation order of the scalar arm.
///
/// # Safety
///
/// `fi±kk` and `fi±nxk` plus three lanes must be in bounds for `mp`,
/// and the host must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn exchange4(
    mp: *const f64,
    fi: usize,
    kk: usize,
    nxk: usize,
    mi: std::arch::x86_64::__m256d,
    cx: std::arch::x86_64::__m256d,
    cy: std::arch::x86_64::__m256d,
    zero: std::arch::x86_64::__m256d,
) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    let t0 = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(mp.add(fi - kk)), mi), cx);
    let t1 = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(mp.add(fi + kk)), mi), cx);
    let t2 = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(mp.add(fi - nxk)), mi), cy);
    let t3 = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(mp.add(fi + nxk)), mi), cy);
    _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(zero, t0), t1), t2),
        t3,
    )
}

/// The branch-free interior stretch, four members at a time with AVX2
/// intrinsics — the auto-vectorizer leaves the equivalent scalar loop
/// 1-wide, so the 4-wide form is written out explicitly. Every
/// intrinsic is a lanewise correctly-rounded IEEE operation applied in
/// the scalar arm's exact expression order (no FMA contraction), so
/// each lane's result is bitwise identical to the scalar stretch; lanes
/// beyond the last multiple of four run the scalar body itself.
///
/// # Safety
///
/// Cells `i_lo..i_hi` must be interior (stencil neighbours at `±1`,
/// `±nx` all magnetic) with all interleaved lanes in bounds, `out` must
/// be owned exclusively by the calling block, and the host must support
/// AVX2 (checked at runtime by the dispatching caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn interior_stretch_avx2(
    i_lo: usize,
    i_hi: usize,
    kk: usize,
    nxk: usize,
    mxp: *const f64,
    myp: *const f64,
    mzp: *const f64,
    ap: *const f64,
    pp: *const f64,
    coeff_x: f64,
    coeff_y: f64,
    uni: Option<(f64, Vec3)>,
    film: Option<f64>,
    zee: Option<Vec3>,
    out: Field3Ptr,
) {
    use std::arch::x86_64::*;
    let (outx, outy, outz) = out.planes();
    let cx = _mm256_set1_pd(coeff_x);
    let cy = _mm256_set1_pd(coeff_y);
    // Absent terms are skipped, not added as zero: −0.0 + +0.0 = +0.0
    // would silently flip signed zeros against the generic ops loop.
    let uni_v = uni.map(|(ku, axis)| {
        (
            _mm256_set1_pd(ku),
            _mm256_set1_pd(axis.x),
            _mm256_set1_pd(axis.y),
            _mm256_set1_pd(axis.z),
        )
    });
    let film_v = film.map(|ms| _mm256_set1_pd(ms));
    let zee_v = zee.map(|z| {
        (
            _mm256_set1_pd(z.x),
            _mm256_set1_pd(z.y),
            _mm256_set1_pd(z.z),
        )
    });
    let zero = _mm256_setzero_pd();
    for i in i_lo..i_hi {
        let alpha = *ap.add(i);
        let prefactor = *pp.add(i);
        let av = _mm256_set1_pd(alpha);
        let pv = _mm256_set1_pd(prefactor);
        let f0 = i * kk;
        let mut s = 0;
        while s + 4 <= kk {
            let fi = f0 + s;
            let mix = _mm256_loadu_pd(mxp.add(fi));
            let miy = _mm256_loadu_pd(myp.add(fi));
            let miz = _mm256_loadu_pd(mzp.add(fi));
            let accx = exchange4(mxp, fi, kk, nxk, mix, cx, cy, zero);
            let accy = exchange4(myp, fi, kk, nxk, miy, cx, cy, zero);
            let accz = exchange4(mzp, fi, kk, nxk, miz, cx, cy, zero);
            // h = 0 + acc, as in the scalar arm's `h += acc` from zero.
            let mut hx = _mm256_add_pd(zero, accx);
            let mut hy = _mm256_add_pd(zero, accy);
            let mut hz = _mm256_add_pd(zero, accz);
            // ani = ku·((m·ax + m·ay) + m·az), the scalar dot's order.
            if let Some((kuv, axx, axy, axz)) = uni_v {
                let dot = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(mix, axx), _mm256_mul_pd(miy, axy)),
                    _mm256_mul_pd(miz, axz),
                );
                let ani = _mm256_mul_pd(kuv, dot);
                hx = _mm256_add_pd(hx, _mm256_mul_pd(axx, ani));
                hy = _mm256_add_pd(hy, _mm256_mul_pd(axy, ani));
                hz = _mm256_add_pd(hz, _mm256_mul_pd(axz, ani));
            }
            if let Some(msv) = film_v {
                hz = _mm256_sub_pd(hz, _mm256_mul_pd(msv, miz));
            }
            if let Some((zx, zy, zz)) = zee_v {
                hx = _mm256_add_pd(hx, zx);
                hy = _mm256_add_pd(hy, zy);
                hz = _mm256_add_pd(hz, zz);
            }
            let mxhx = _mm256_sub_pd(_mm256_mul_pd(miy, hz), _mm256_mul_pd(miz, hy));
            let mxhy = _mm256_sub_pd(_mm256_mul_pd(miz, hx), _mm256_mul_pd(mix, hz));
            let mxhz = _mm256_sub_pd(_mm256_mul_pd(mix, hy), _mm256_mul_pd(miy, hx));
            let mxmxhx = _mm256_sub_pd(_mm256_mul_pd(miy, mxhz), _mm256_mul_pd(miz, mxhy));
            let mxmxhy = _mm256_sub_pd(_mm256_mul_pd(miz, mxhx), _mm256_mul_pd(mix, mxhz));
            let mxmxhz = _mm256_sub_pd(_mm256_mul_pd(mix, mxhy), _mm256_mul_pd(miy, mxhx));
            _mm256_storeu_pd(
                outx.add(fi),
                _mm256_mul_pd(_mm256_add_pd(mxhx, _mm256_mul_pd(mxmxhx, av)), pv),
            );
            _mm256_storeu_pd(
                outy.add(fi),
                _mm256_mul_pd(_mm256_add_pd(mxhy, _mm256_mul_pd(mxmxhy, av)), pv),
            );
            _mm256_storeu_pd(
                outz.add(fi),
                _mm256_mul_pd(_mm256_add_pd(mxhz, _mm256_mul_pd(mxmxhz, av)), pv),
            );
            s += 4;
        }
        // Remainder lanes: the scalar stretch body verbatim.
        for s in s..kk {
            let fi = f0 + s;
            let mix = *mxp.add(fi);
            let miy = *myp.add(fi);
            let miz = *mzp.add(fi);
            let mut accx = 0.0;
            let mut accy = 0.0;
            let mut accz = 0.0;
            accx += (*mxp.add(fi - kk) - mix) * coeff_x;
            accy += (*myp.add(fi - kk) - miy) * coeff_x;
            accz += (*mzp.add(fi - kk) - miz) * coeff_x;
            accx += (*mxp.add(fi + kk) - mix) * coeff_x;
            accy += (*myp.add(fi + kk) - miy) * coeff_x;
            accz += (*mzp.add(fi + kk) - miz) * coeff_x;
            accx += (*mxp.add(fi - nxk) - mix) * coeff_y;
            accy += (*myp.add(fi - nxk) - miy) * coeff_y;
            accz += (*mzp.add(fi - nxk) - miz) * coeff_y;
            accx += (*mxp.add(fi + nxk) - mix) * coeff_y;
            accy += (*myp.add(fi + nxk) - miy) * coeff_y;
            accz += (*mzp.add(fi + nxk) - miz) * coeff_y;
            let mut hx = 0.0;
            let mut hy = 0.0;
            let mut hz = 0.0;
            hx += accx;
            hy += accy;
            hz += accz;
            if let Some((ku, axis)) = uni {
                let ani = ku * (mix * axis.x + miy * axis.y + miz * axis.z);
                hx += axis.x * ani;
                hy += axis.y * ani;
                hz += axis.z * ani;
            }
            if let Some(ms) = film {
                hz -= ms * miz;
            }
            if let Some(z) = zee {
                hx += z.x;
                hy += z.y;
                hz += z.z;
            }
            let mxhx = miy * hz - miz * hy;
            let mxhy = miz * hx - mix * hz;
            let mxhz = mix * hy - miy * hx;
            let mxmxhx = miy * mxhz - miz * mxhy;
            let mxmxhy = miz * mxhx - mix * mxhz;
            let mxmxhz = mix * mxhy - miy * mxhx;
            *outx.add(fi) = (mxhx + mxmxhx * alpha) * prefactor;
            *outy.add(fi) = (mxhy + mxmxhy * alpha) * prefactor;
            *outz.add(fi) = (mxhz + mxmxhz * alpha) * prefactor;
        }
    }
}

/// The builder's canonical term sequence — optional exchange, uniaxial
/// anisotropy, thin-film demag, uniform Zeeman, in exactly that order —
/// unpacked into loop-invariant scalars so the interior sweep compiles to
/// straight-line code. `None` when the op sequence deviates from the
/// canonical order (hand-assembled systems); the generic ops loop then
/// runs instead. Evaluation order matches the ops loop exactly, so both
/// paths are bitwise identical.
#[derive(Debug, Clone, Copy, Default)]
struct StdOps {
    ex: Option<(f64, f64)>,
    uni: Option<(f64, Vec3)>,
    film: Option<f64>,
    zee: Option<Vec3>,
}

/// Matches `ops` against the canonical order (each slot at most once).
fn std_ops(ops: &[FusedTerm]) -> Option<StdOps> {
    let mut std = StdOps::default();
    let mut rank = 0;
    for op in ops {
        let r = match *op {
            FusedTerm::Exchange { .. } => 1,
            FusedTerm::Uniaxial { .. } => 2,
            FusedTerm::ThinFilm { .. } => 3,
            FusedTerm::Uniform(_) => 4,
        };
        if r <= rank {
            return None;
        }
        rank = r;
        match *op {
            FusedTerm::Exchange { coeff_x, coeff_y } => std.ex = Some((coeff_x, coeff_y)),
            FusedTerm::Uniaxial { coeff, axis } => std.uni = Some((coeff, axis)),
            FusedTerm::ThinFilm { ms } => std.film = Some(ms),
            FusedTerm::Uniform(f) => std.zee = Some(f),
        }
    }
    Some(std)
}

/// The precompiled single-pass kernel (see module docs).
#[derive(Debug)]
struct FusedKernel {
    /// Flat indices of the magnetic cells, ascending.
    cells: Vec<u32>,
    /// Per magnetic cell: `[left, right, down, up]` neighbour flat index,
    /// or [`NO_NEIGHBOUR`] where the stencil hits an edge or vacuum.
    nbrs: Vec<[u32; 4]>,
    /// Fused ops in field-term order.
    ops: Vec<FusedTerm>,
    /// Indices into `terms` of non-fusable terms (serial pre-pass).
    unfused: Vec<usize>,
    /// CSR offsets into `ant_ids`, one entry per magnetic cell plus one.
    /// Empty when there are no antennas.
    ant_off: Vec<u32>,
    /// Antenna indices covering each magnetic cell.
    ant_ids: Vec<u32>,
    blocks: Vec<Block>,
    /// Interior-run/scalar partition of every block's list range.
    segs: Vec<Segment>,
    /// The canonical op sequence, when the terms match it.
    std_ops: Option<StdOps>,
    /// Mesh row length — interior neighbours are `i±1` and `i±nx`.
    nx: usize,
    /// No vacuum anywhere: every block's list range equals its flat
    /// range, so stage fusion can run inside the sweep pass.
    full_film: bool,
}

/// Everything needed to assemble an [`LlgSystem`].
pub(crate) struct SystemSpec {
    pub terms: Vec<Box<dyn FieldTerm>>,
    pub antennas: Vec<Antenna>,
    /// Thermal buffer (empty at T = 0, one entry per cell otherwise).
    pub thermal: Vec<Vec3>,
    /// Per-cell Gilbert damping.
    pub alpha: Vec<f64>,
    /// |γ| in rad/(s·T).
    pub gamma: f64,
    pub mask: Vec<bool>,
    /// Mesh row length (cells per row).
    pub nx: usize,
    /// Worker-team size (1 = serial).
    pub threads: usize,
}

impl SystemSpec {
    /// Compiles the fused kernel and spins up the worker team.
    pub(crate) fn build(self) -> LlgSystem {
        let SystemSpec {
            terms,
            antennas,
            thermal,
            alpha,
            gamma,
            mask,
            nx,
            threads,
        } = self;
        let n = mask.len();
        assert!(n > 0, "system must have at least one cell");
        assert!(
            nx > 0 && n % nx == 0,
            "mask length {n} is not a multiple of the row length {nx}"
        );
        assert!(n <= u32::MAX as usize, "mesh too large for u32 indexing");
        assert_eq!(alpha.len(), n, "damping map length mismatch");

        let cells: Vec<u32> = (0..n).filter(|&i| mask[i]).map(|i| i as u32).collect();
        let nbrs: Vec<[u32; 4]> = cells
            .iter()
            .map(|&c| {
                let i = c as usize;
                let ix = i % nx;
                let present = |cond: bool, j: usize| {
                    if cond && mask[j] {
                        j as u32
                    } else {
                        NO_NEIGHBOUR
                    }
                };
                [
                    present(ix > 0, i.wrapping_sub(1)),
                    present(ix + 1 < nx, i + 1),
                    present(i >= nx, i.wrapping_sub(nx)),
                    present(i + nx < n, i + nx),
                ]
            })
            .collect();

        // Fused ops in term order, dropping ops the term-by-term path
        // would also skip (`accumulate` early returns).
        let ops: Vec<FusedTerm> = terms
            .iter()
            .filter_map(|t| t.fused())
            .filter(|op| match *op {
                FusedTerm::Uniform(f) => f != Vec3::ZERO,
                FusedTerm::Uniaxial { coeff, .. } => coeff != 0.0,
                _ => true,
            })
            .collect();
        let unfused: Vec<usize> = terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.fused().is_none())
            .map(|(i, _)| i)
            .collect();

        let threads = threads.clamp(1, n);
        let mut segs: Vec<Segment> = Vec::new();
        let mut blocks: Vec<Block> = Vec::with_capacity(threads);
        for b in 0..threads {
            let flat = chunk_bounds(n, threads, b);
            let list = chunk_bounds(cells.len(), threads, b);
            let seg0 = segs.len();
            let mut scalar_start = list.0;
            let mut ci = list.0;
            while ci < list.1 {
                // Grow a maximal interior run: every cell has all four
                // neighbours and the flat indices are consecutive.
                let run_start = ci;
                while ci < list.1
                    && nbrs[ci].iter().all(|&x| x != NO_NEIGHBOUR)
                    && (ci == run_start || cells[ci] == cells[ci - 1] + 1)
                {
                    ci += 1;
                }
                if ci - run_start >= MIN_RUN {
                    if run_start > scalar_start {
                        segs.push(Segment {
                            ci0: scalar_start as u32,
                            ci1: run_start as u32,
                            interior: false,
                        });
                    }
                    segs.push(Segment {
                        ci0: run_start as u32,
                        ci1: ci as u32,
                        interior: true,
                    });
                    scalar_start = ci;
                } else if ci == run_start {
                    // Not interior: absorb into the current scalar stretch.
                    ci += 1;
                }
                // Short runs simply stay inside the scalar stretch.
            }
            if list.1 > scalar_start {
                segs.push(Segment {
                    ci0: scalar_start as u32,
                    ci1: list.1 as u32,
                    interior: false,
                });
            }
            blocks.push(Block {
                flat,
                list,
                segs: (seg0, segs.len()),
                has_vacuum: (flat.0..flat.1).any(|i| !mask[i]),
            });
        }

        let full_film = mask.iter().all(|&m| m);
        let term_scratch = terms.iter().map(|t| t.make_scratch()).collect();
        let mut system = LlgSystem {
            terms,
            term_scratch,
            antennas,
            thermal,
            alpha,
            prefactor: Vec::new(),
            gamma,
            mask,
            kernel: FusedKernel {
                std_ops: std_ops(&ops),
                cells,
                nbrs,
                ops,
                unfused,
                ant_off: Vec::new(),
                ant_ids: Vec::new(),
                blocks,
                segs,
                nx,
                full_film,
            },
            team: WorkerTeam::new(threads),
        };
        system.refresh_prefactors();
        system.rebuild_antenna_map();
        system
    }
}

/// The assembled LLG system: field terms, antennas, damping map and the
/// frozen thermal-field buffer for the current step.
///
/// Constructed by [`crate::sim::SimulationBuilder`]; integrators only call
/// [`LlgSystem::rhs`].
pub struct LlgSystem {
    pub(crate) terms: Vec<Box<dyn FieldTerm>>,
    /// Per-term hot-path scratch (`None` for terms without any), indexed
    /// like `terms` and threaded through `accumulate_par` by `rhs`.
    term_scratch: Vec<Option<Box<dyn std::any::Any + Send + Sync>>>,
    pub(crate) antennas: Vec<Antenna>,
    /// Thermal field realization for the current step (all zeros at T=0).
    pub(crate) thermal: Vec<Vec3>,
    /// Per-cell Gilbert damping.
    pub(crate) alpha: Vec<f64>,
    /// Per-cell `−γμ₀/(1+α²)`, derived from `alpha` — precomputing it
    /// removes a division from every cell of every stage sweep. Kept in
    /// sync by [`LlgSystem::refresh_prefactors`]; the stored value is the
    /// exact same expression the torque used to evaluate inline, so the
    /// result is bitwise unchanged.
    prefactor: Vec<f64>,
    /// |γ| in rad/(s·T).
    pub(crate) gamma: f64,
    pub(crate) mask: Vec<bool>,
    kernel: FusedKernel,
    team: WorkerTeam,
}

impl LlgSystem {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True if the system has no cells (never the case after a successful
    /// build).
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// The worker team shared by every parallel region of this system.
    pub(crate) fn par(&self) -> &WorkerTeam {
        &self.team
    }

    /// True when the mask has no vacuum cells (see
    /// [`renormalize_and_check`][crate::solver] for why integrators care).
    pub(crate) fn full_film(&self) -> bool {
        self.kernel.full_film
    }

    /// Rebuilds the per-cell torque prefactor table from `alpha`.
    fn refresh_prefactors(&mut self) {
        self.prefactor.clear();
        self.prefactor.extend(
            self.alpha
                .iter()
                .map(|&a| -self.gamma * MU0 / (1.0 + a * a)),
        );
    }

    /// Swaps the damping map wholesale (used by `relax` to install and
    /// restore its high-damping map without allocating) and refreshes the
    /// derived prefactor table.
    pub(crate) fn swap_alpha(&mut self, other: &mut Vec<f64>) {
        assert_eq!(other.len(), self.alpha.len(), "damping map length mismatch");
        std::mem::swap(&mut self.alpha, other);
        self.refresh_prefactors();
    }

    /// Registers an antenna and recompiles the per-cell antenna map.
    pub(crate) fn add_antenna(&mut self, antenna: Antenna) {
        self.antennas.push(antenna);
        self.rebuild_antenna_map();
    }

    /// Removes all antennas.
    pub(crate) fn clear_antennas(&mut self) {
        self.antennas.clear();
        self.rebuild_antenna_map();
    }

    /// Flattens antenna coverage into a CSR (cell → antenna ids) map.
    ///
    /// `relax` temporarily empties `antennas` without touching the map —
    /// the hot path skips antenna evaluation entirely while the list is
    /// empty, so the stale map is never read.
    fn rebuild_antenna_map(&mut self) {
        self.kernel.ant_off.clear();
        self.kernel.ant_ids.clear();
        if self.antennas.is_empty() {
            return;
        }
        let n = self.mask.len();
        let mut per_cell: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (ai, antenna) in self.antennas.iter().enumerate() {
            for &c in antenna.cells() {
                if c < n {
                    per_cell[c].push(ai as u32);
                }
            }
        }
        self.kernel.ant_off.reserve(self.kernel.cells.len() + 1);
        self.kernel.ant_off.push(0);
        for &c in &self.kernel.cells {
            self.kernel.ant_ids.extend_from_slice(&per_cell[c as usize]);
            self.kernel.ant_off.push(self.kernel.ant_ids.len() as u32);
        }
    }

    /// Per-antenna drive fields at time `t` (empty when no antennas).
    pub(crate) fn antenna_fields(&self, t: f64) -> Vec<Vec3> {
        if self.antennas.is_empty() {
            return Vec::new();
        }
        self.antennas
            .iter()
            .map(|a| a.direction() * a.drive().value(t))
            .collect()
    }

    /// Effective field at one magnetic cell, assembled from the serial
    /// pre-pass (`base`), the fused ops, the antenna drives and the
    /// thermal buffer — in exactly the order the term-by-term path uses.
    ///
    /// `mx`/`my`/`mz` are the component planes of the stage input; the
    /// exchange stencil gathers neighbours from them directly.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn fused_field(
        &self,
        ci: usize,
        i: usize,
        mi: Vec3,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&Field3>,
        ant_fields: &[Vec3],
    ) -> Vec3 {
        let mut h = match base {
            Some(b) => b.get(i),
            None => Vec3::ZERO,
        };
        for op in &self.kernel.ops {
            match *op {
                FusedTerm::Exchange { coeff_x, coeff_y } => {
                    let nb = self.kernel.nbrs[ci];
                    let at = |j: usize| Vec3::new(mx[j], my[j], mz[j]);
                    let mut acc = Vec3::ZERO;
                    if nb[0] != NO_NEIGHBOUR {
                        acc += (at(nb[0] as usize) - mi) * coeff_x;
                    }
                    if nb[1] != NO_NEIGHBOUR {
                        acc += (at(nb[1] as usize) - mi) * coeff_x;
                    }
                    if nb[2] != NO_NEIGHBOUR {
                        acc += (at(nb[2] as usize) - mi) * coeff_y;
                    }
                    if nb[3] != NO_NEIGHBOUR {
                        acc += (at(nb[3] as usize) - mi) * coeff_y;
                    }
                    h += acc;
                }
                FusedTerm::Uniaxial { coeff, axis } => {
                    h += axis * (coeff * mi.dot(axis));
                }
                FusedTerm::ThinFilm { ms } => {
                    h.z -= ms * mi.z;
                }
                FusedTerm::Uniform(f) => {
                    h += f;
                }
            }
        }
        if !ant_fields.is_empty() {
            let a0 = self.kernel.ant_off[ci] as usize;
            let a1 = self.kernel.ant_off[ci + 1] as usize;
            for &ai in &self.kernel.ant_ids[a0..a1] {
                let f = ant_fields[ai as usize];
                if f != Vec3::ZERO {
                    h += f;
                }
            }
        }
        if !self.thermal.is_empty() {
            h += self.thermal[i];
        }
        h
    }

    /// The LLG torque at cell `i` for field `h`.
    #[inline(always)]
    fn torque(&self, i: usize, mi: Vec3, h: Vec3) -> Vec3 {
        let alpha = self.alpha[i];
        let prefactor = self.prefactor[i];
        let mxh = mi.cross(h);
        let mxmxh = mi.cross(mxh);
        (mxh + mxmxh * alpha) * prefactor
    }

    /// Hot-path pre-pass: runs each non-fusable term through
    /// `accumulate_par` with the worker team and the term's own scratch —
    /// lock-free and allocation-free, bitwise identical to the reference
    /// `accumulate` path for any team size. Returns whether anything was
    /// written into `h`.
    fn unfused_prepass_par(&mut self, m: &Field3, t: f64, h: &mut Field3) -> bool {
        if self.kernel.unfused.is_empty() {
            return false;
        }
        h.fill(Vec3::ZERO);
        let LlgSystem {
            terms,
            term_scratch,
            kernel,
            team,
            ..
        } = self;
        for &ti in &kernel.unfused {
            let scratch = term_scratch[ti]
                .as_mut()
                .map(|s| &mut **s as &mut (dyn std::any::Any + Send + Sync));
            terms[ti].accumulate_par(m, t, h, team, scratch);
        }
        true
    }

    /// Computes the effective field (A/m) into `h` at time `t`.
    ///
    /// This is the term-by-term reference path (used by energy accounting,
    /// probes and tests); the integrator hot loop uses the fused kernel in
    /// [`LlgSystem::rhs`] instead.
    pub fn effective_field(&self, m: &[Vec3], t: f64, h: &mut [Vec3]) {
        h.fill(Vec3::ZERO);
        for term in &self.terms {
            term.accumulate(m, t, h);
        }
        for antenna in &self.antennas {
            antenna.accumulate(t, h);
        }
        if !self.thermal.is_empty() {
            for (hi, th) in h.iter_mut().zip(self.thermal.iter()) {
                *hi += *th;
            }
        }
    }

    /// Evaluates `dm/dt` into `dmdt`, using `h_scratch` for the field.
    ///
    /// Vacuum cells get zero torque.
    pub fn rhs(&mut self, m: &Field3, t: f64, dmdt: &mut Field3, h_scratch: &mut Field3) {
        self.rhs_stage(m, t, dmdt, h_scratch, |_, _, _| {});
    }

    /// The fused stage kernel: evaluates `dm/dt` of the stage input `y`
    /// into `k_out`, then invokes `fuse(i0, i1, k)` once per worker block
    /// with the block's flat cell range and a raw view of `k_out`, while
    /// the block's data is still cache-resident. Integrators use `fuse`
    /// to apply the axpy-style stage combinations (`m + dt·b·k`, the
    /// final RK update, …) that used to be separate full-mesh passes.
    ///
    /// `fuse` gets a whole contiguous range rather than one cell at a
    /// time so its loop stays a plain streaming axpy the compiler can
    /// vectorize on its own — a per-cell callback inside the field sweep
    /// defeats the sweep's vectorization through opaque raw-pointer
    /// aliasing.
    ///
    /// Vacuum cells have `k = 0` written before `fuse` runs, so the fused
    /// arithmetic covers exactly the index set the old full-mesh stage
    /// passes did.
    ///
    /// `fuse` runs on worker threads; each block invokes it for a
    /// disjoint cell range, so writing through raw plane pointers inside
    /// `i0..i1` is sound. It must not read any cell another block may
    /// write concurrently.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if buffer lengths mismatch.
    pub(crate) fn rhs_stage<F>(
        &mut self,
        y: &Field3,
        t: f64,
        k_out: &mut Field3,
        h_scratch: &mut Field3,
        fuse: F,
    ) where
        F: Fn(usize, usize, Field3Ptr) + Sync,
    {
        debug_assert_eq!(y.len(), self.len());
        debug_assert_eq!(k_out.len(), self.len());
        debug_assert_eq!(h_scratch.len(), self.len());
        let wrote_base = self.unfused_prepass_par(y, t, h_scratch);
        let out = k_out.ptrs();
        // The mutable phase (per-term scratch) is over; the fused region
        // only reads the system.
        let this: &LlgSystem = &*self;
        let base = if wrote_base { Some(&*h_scratch) } else { None };
        let ant_fields = this.antenna_fields(t);
        let (mx, my, mz) = (y.xs(), y.ys(), y.zs());
        this.team.run(&|b| {
            let block = this.kernel.blocks[b];
            // Vacuum cells in this block's flat range get zero torque;
            // magnetic cells are written by the segment loops below. The
            // two partitions are disjoint per cell, so every `k_out`
            // element is written exactly once across all blocks.
            if block.has_vacuum {
                for i in block.flat.0..block.flat.1 {
                    if !this.mask[i] {
                        // Safety: flat ranges are disjoint across blocks
                        // and only vacuum cells are touched here.
                        unsafe { out.write(i, Vec3::ZERO) };
                    }
                }
            }
            match this.kernel.std_ops {
                Some(std) => {
                    for seg in &this.kernel.segs[block.segs.0..block.segs.1] {
                        if seg.interior {
                            this.sweep_interior(*seg, std, mx, my, mz, base, &ant_fields, out);
                        } else {
                            this.sweep_scalar(
                                seg.ci0 as usize,
                                seg.ci1 as usize,
                                mx,
                                my,
                                mz,
                                base,
                                &ant_fields,
                                out,
                            );
                        }
                    }
                }
                None => this.sweep_scalar(
                    block.list.0,
                    block.list.1,
                    mx,
                    my,
                    mz,
                    base,
                    &ant_fields,
                    out,
                ),
            }
            // On a full film every block's list range is its flat range,
            // so the block fuses exactly the cells it just wrote — no
            // cross-block ordering is needed and the data is still
            // cache-resident.
            if this.kernel.full_film {
                fuse(block.flat.0, block.flat.1, out);
            }
        });
        if !this.kernel.full_film {
            // With vacuum the flat and list chunkings own different cell
            // sets, so a block may fuse a cell another block wrote. The
            // `team.run` barrier above orders every `k_out` write before
            // the fuse reads.
            this.team.run(&|b| {
                let block = this.kernel.blocks[b];
                fuse(block.flat.0, block.flat.1, out);
            });
        }
    }

    /// The general sweep body: handles boundary and vacuum-adjacent cells
    /// (and arbitrary op sequences) via the stencil table and the ops
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn sweep_scalar(
        &self,
        ci0: usize,
        ci1: usize,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&Field3>,
        ant_fields: &[Vec3],
        out: Field3Ptr,
    ) {
        for ci in ci0..ci1 {
            let i = self.kernel.cells[ci] as usize;
            let mi = Vec3::new(mx[i], my[i], mz[i]);
            let h = self.fused_field(ci, i, mi, mx, my, mz, base, ant_fields);
            let k = self.torque(i, mi, h);
            // Safety: list ranges are disjoint across blocks and only
            // magnetic cells are touched here.
            unsafe { out.write(i, k) };
        }
    }

    /// The branchless interior sweep: every cell of the run has all four
    /// neighbours at `i±1`/`i±nx` and consecutive flat indices, so the
    /// stencil needs no table, no presence checks and no bounds checks —
    /// the loop body is straight-line code over the component planes,
    /// which is what lets LLVM vectorize it. Each cell evaluates the
    /// exact same expression tree as [`LlgSystem::fused_field`] +
    /// [`LlgSystem::torque`] (same terms, same order), so the result is
    /// bitwise identical to the scalar path.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn sweep_interior(
        &self,
        seg: Segment,
        std: StdOps,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&Field3>,
        ant_fields: &[Vec3],
        out: Field3Ptr,
    ) {
        let i0 = self.kernel.cells[seg.ci0 as usize] as usize;
        let len = (seg.ci1 - seg.ci0) as usize;
        let nx = self.kernel.nx;
        let (mxp, myp, mzp) = (mx.as_ptr(), my.as_ptr(), mz.as_ptr());
        let ap = self.alpha.as_ptr();
        let pp = self.prefactor.as_ptr();
        // The branch-free arm: every standard term present and no
        // per-cell extras. Pulling the term parameters out of their
        // `Option`s ahead of the loop leaves a straight-line body that
        // LLVM can unswitch and vectorize; the generic arm below keeps
        // loop-invariant conditionals per cell, which blocks that.
        if ant_fields.is_empty() && self.thermal.is_empty() && base.is_none() {
            if let (Some((coeff_x, coeff_y)), Some((ku, axis)), Some(ms), Some(zee)) =
                (std.ex, std.uni, std.film, std.zee)
            {
                for off in 0..len {
                    let i = i0 + off;
                    // Safety: as below — interior-run indices are
                    // validated at build time.
                    let at = |j: usize| unsafe { Vec3::new(*mxp.add(j), *myp.add(j), *mzp.add(j)) };
                    let mi = at(i);
                    let mut h = Vec3::ZERO;
                    let mut acc = Vec3::ZERO;
                    acc += (at(i - 1) - mi) * coeff_x;
                    acc += (at(i + 1) - mi) * coeff_x;
                    acc += (at(i - nx) - mi) * coeff_y;
                    acc += (at(i + nx) - mi) * coeff_y;
                    h += acc;
                    h += axis * (ku * mi.dot(axis));
                    h.z -= ms * mi.z;
                    h += zee;
                    let (alpha, prefactor) = unsafe { (*ap.add(i), *pp.add(i)) };
                    let mxh = mi.cross(h);
                    let mxmxh = mi.cross(mxh);
                    let k = (mxh + mxmxh * alpha) * prefactor;
                    // Safety: disjoint index ownership as in the scalar
                    // sweep.
                    unsafe { out.write(i, k) };
                }
                return;
            }
        }
        for off in 0..len {
            let i = i0 + off;
            // Safety: interior runs are validated at build time — `i` and
            // all four neighbour indices are in bounds for every plane,
            // and `alpha`/`prefactor` have one entry per cell.
            let at = |j: usize| unsafe { Vec3::new(*mxp.add(j), *myp.add(j), *mzp.add(j)) };
            let mi = at(i);
            let mut h = match base {
                Some(b) => b.get(i),
                None => Vec3::ZERO,
            };
            if let Some((coeff_x, coeff_y)) = std.ex {
                let mut acc = Vec3::ZERO;
                acc += (at(i - 1) - mi) * coeff_x;
                acc += (at(i + 1) - mi) * coeff_x;
                acc += (at(i - nx) - mi) * coeff_y;
                acc += (at(i + nx) - mi) * coeff_y;
                h += acc;
            }
            if let Some((coeff, axis)) = std.uni {
                h += axis * (coeff * mi.dot(axis));
            }
            if let Some(ms) = std.film {
                h.z -= ms * mi.z;
            }
            if let Some(f) = std.zee {
                h += f;
            }
            if !ant_fields.is_empty() {
                let ci = seg.ci0 as usize + off;
                let a0 = self.kernel.ant_off[ci] as usize;
                let a1 = self.kernel.ant_off[ci + 1] as usize;
                for &ai in &self.kernel.ant_ids[a0..a1] {
                    let f = ant_fields[ai as usize];
                    if f != Vec3::ZERO {
                        h += f;
                    }
                }
            }
            if !self.thermal.is_empty() {
                h += self.thermal[i];
            }
            let (alpha, prefactor) = unsafe { (*ap.add(i), *pp.add(i)) };
            let mxh = mi.cross(h);
            let mxmxh = mi.cross(mxh);
            let k = (mxh + mxmxh * alpha) * prefactor;
            // Safety: disjoint index ownership as in the scalar sweep.
            unsafe { out.write(i, k) };
        }
    }

    /// True when the system has non-fusable terms (FFT demag) that need
    /// the pre-pass.
    pub(crate) fn has_unfused(&self) -> bool {
        !self.kernel.unfused.is_empty()
    }

    /// Batched analogue of the unfused pre-pass: de-interleaves each
    /// member of `y`, runs every non-fusable term through
    /// `accumulate_par` with the *shared* worker team and per-term
    /// scratch, and interleaves the result into `base`. Because the K
    /// members reuse one term instance and one scratch, the K Newell
    /// demag convolutions share a single FFT plan — twiddle tables,
    /// transpose buffers and kernel spectra are loaded once per batch
    /// step instead of once per member. Per member the call sequence is
    /// exactly the single-system pre-pass (zero-fill, then each term in
    /// order on the same team), so the result is bitwise identical to K
    /// independent runs. Returns whether anything was written.
    pub(crate) fn unfused_prepass_batch(
        &mut self,
        y: &FieldBatch,
        t: f64,
        base: &mut FieldBatch,
        m_scratch: &mut Field3,
        h_scratch: &mut Field3,
    ) -> bool {
        if self.kernel.unfused.is_empty() {
            return false;
        }
        debug_assert_eq!(y.cells(), self.len());
        debug_assert_eq!(base.cells(), self.len());
        debug_assert_eq!(base.k(), y.k());
        debug_assert_eq!(m_scratch.len(), self.len());
        debug_assert_eq!(h_scratch.len(), self.len());
        for s in 0..y.k() {
            y.store_member(s, m_scratch);
            h_scratch.fill(Vec3::ZERO);
            let LlgSystem {
                terms,
                term_scratch,
                kernel,
                team,
                ..
            } = self;
            for &ti in &kernel.unfused {
                let scratch = term_scratch[ti]
                    .as_mut()
                    .map(|s| &mut **s as &mut (dyn std::any::Any + Send + Sync));
                terms[ti].accumulate_par(m_scratch, t, h_scratch, team, scratch);
            }
            base.load_member(s, &*h_scratch);
        }
        true
    }

    /// Batched analogue of [`LlgSystem::rhs_stage`]: advances the K
    /// members of `y` — simulations sharing this system's geometry,
    /// damping map and fused kernel — through one sweep over the
    /// K-interleaved planes.
    ///
    /// Per-member inputs that differ across the batch are explicit:
    /// `ant_fields[s]` holds member `s`'s per-antenna drive fields at
    /// the stage time (members must have antennas covering the same
    /// cells so the shared CSR map applies; only drive values differ),
    /// `thermal` is the K-interleaved per-member thermal realization
    /// (empty at T = 0), and `base` is the K-interleaved output of
    /// [`LlgSystem::unfused_prepass_batch`] (or `None`).
    ///
    /// `k_out`'s vacuum lanes must already be zero on entry: only
    /// magnetic lanes are written, so a `FieldBatch::zeros` buffer
    /// reused across stages keeps its vacuum zeros without the
    /// single-system path's per-stage vacuum pass.
    ///
    /// Per (cell, member) the arithmetic — term order, neighbour
    /// gathers, antenna accumulation, torque — is the exact expression
    /// sequence the single-system sweep evaluates, so each member's
    /// slice of `k_out` is bitwise identical to an independent run. The
    /// win is structural: the stencil table, neighbour-presence
    /// branches, CSR offsets and per-cell damping loads are amortized
    /// over K members, and with K innermost the member loop runs over
    /// consecutive lanes the vectorizer can use.
    ///
    /// `fuse` receives interleaved flat ranges (cell range × K) with
    /// the same disjoint-ownership contract as in `rhs_stage` — but on
    /// shaped meshes the ranges cover only the magnetic runs: vacuum
    /// lanes are never fused (their values are zero on both sides of
    /// every fuse, so the single-system result `0 + 0·c = 0` is what
    /// skipping leaves in place).
    pub(crate) fn rhs_stage_batch<F>(
        &self,
        y: &FieldBatch,
        k_out: &mut FieldBatch,
        base: Option<&FieldBatch>,
        ant_fields: &[Vec<Vec3>],
        thermal: &FieldBatch,
        fuse: F,
    ) where
        F: Fn(usize, usize, Field3Ptr) + Sync,
    {
        let kk = y.k();
        debug_assert_eq!(y.cells(), self.len());
        debug_assert_eq!(k_out.cells(), self.len());
        debug_assert_eq!(k_out.k(), kk);
        debug_assert!(ant_fields.is_empty() || ant_fields.len() == kk);
        debug_assert!(thermal.is_empty() || (thermal.cells() == self.len() && thermal.k() == kk));
        let out = k_out.ptrs();
        let this: &LlgSystem = self;
        let (mx, my, mz) = (y.data().xs(), y.data().ys(), y.data().zs());
        // One runtime check per stage: the batch sweep's inner loops run
        // over consecutive interleaved lanes, which pays off most when
        // compiled 4-wide — so the whole per-block sweep exists twice,
        // baseline and AVX2, and the AVX2 copy is picked when the host
        // supports it. Same Rust code, so identical IEEE results: wider
        // lanes change throughput, never rounding.
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
        this.team.run(&|b| {
            #[cfg(target_arch = "x86_64")]
            if use_avx2 {
                // Safety: AVX2 support was checked at runtime above.
                unsafe {
                    this.sweep_block_batch_avx2(b, mx, my, mz, base, ant_fields, thermal, kk, out)
                };
            } else {
                this.sweep_block_batch(b, mx, my, mz, base, ant_fields, thermal, kk, out, false);
            }
            #[cfg(not(target_arch = "x86_64"))]
            this.sweep_block_batch(b, mx, my, mz, base, ant_fields, thermal, kk, out, false);
            if this.kernel.full_film {
                let block = this.kernel.blocks[b];
                fuse(block.flat.0 * kk, block.flat.1 * kk, out);
            }
        });
        if !this.kernel.full_film {
            this.team.run(&|b| {
                // Fuse only the magnetic lanes. Vacuum lanes of every
                // batch buffer are zero (the builder zeroes vacuum
                // magnetization and nothing here writes it), so a fuse
                // over them would only recompute `0 + 0·c = 0` — on
                // shaped meshes like the triangle gates that is half the
                // flat range. Magnetic cells come in runs of consecutive
                // flat indices, and a run's lanes form one contiguous
                // interleaved range.
                let block = this.kernel.blocks[b];
                let cells = &this.kernel.cells[block.list.0..block.list.1];
                let mut p = 0;
                while p < cells.len() {
                    let run0 = cells[p] as usize;
                    let mut q = p + 1;
                    while q < cells.len() && cells[q] as usize == run0 + (q - p) {
                        q += 1;
                    }
                    fuse(run0 * kk, (run0 + (q - p)) * kk, out);
                    p = q;
                }
            });
        }
    }

    /// One block's share of the batched sweep: the segment walk
    /// dispatching interior runs and scalar stretches.
    ///
    /// Unlike `rhs_stage`, vacuum lanes are NOT re-zeroed here: the
    /// contract is that the caller provides `k_out` with vacuum lanes
    /// already zero (`FieldBatch::zeros`), and this sweep only ever
    /// writes magnetic lanes — so the zeros persist across calls and
    /// the batch skips K·vacuum stores per stage. The batch steppers
    /// allocate with `zeros` and reuse the buffers, satisfying this by
    /// construction.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn sweep_block_batch(
        &self,
        b: usize,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&FieldBatch>,
        ant_fields: &[Vec<Vec3>],
        thermal: &FieldBatch,
        kk: usize,
        out: Field3Ptr,
        avx2: bool,
    ) {
        let block = self.kernel.blocks[b];
        match self.kernel.std_ops {
            Some(std) => {
                for seg in &self.kernel.segs[block.segs.0..block.segs.1] {
                    if seg.interior {
                        self.sweep_interior_batch(
                            *seg, std, mx, my, mz, base, ant_fields, thermal, kk, out, avx2,
                        );
                    } else {
                        self.sweep_scalar_batch(
                            seg.ci0 as usize,
                            seg.ci1 as usize,
                            mx,
                            my,
                            mz,
                            base,
                            ant_fields,
                            thermal,
                            kk,
                            out,
                        );
                    }
                }
            }
            None => self.sweep_scalar_batch(
                block.list.0,
                block.list.1,
                mx,
                my,
                mz,
                base,
                ant_fields,
                thermal,
                kk,
                out,
            ),
        }
    }

    /// [`LlgSystem::sweep_block_batch`] compiled with AVX2 enabled, for
    /// hosts that have it (checked at runtime by the caller). The inlined
    /// sweep bodies auto-vectorize 4-wide over the consecutive
    /// interleaved lanes; every operation is the same correctly-rounded
    /// IEEE arithmetic, so results are bitwise identical to the baseline
    /// copy.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    fn sweep_block_batch_avx2(
        &self,
        b: usize,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&FieldBatch>,
        ant_fields: &[Vec<Vec3>],
        thermal: &FieldBatch,
        kk: usize,
        out: Field3Ptr,
    ) {
        self.sweep_block_batch(b, mx, my, mz, base, ant_fields, thermal, kk, out, true);
    }

    /// Batched general sweep body (see [`LlgSystem::sweep_scalar`]): the
    /// stencil table, CSR offsets and damping loads are hoisted per cell
    /// and the member loop runs innermost over the interleaved planes.
    ///
    /// The member loop is chunked into groups of up to
    /// [`SCALAR_LANES`] consecutive lanes so every data-independent
    /// branch — the op dispatch, the four neighbour-presence tests, the
    /// antenna CSR walk — runs once per cell (per chunk) instead of once
    /// per cell per member. Each lane's `h` still accumulates its terms
    /// in exactly the single-system order, so members remain bitwise
    /// identical to independent runs; only the interleaving of work
    /// across lanes changes.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn sweep_scalar_batch(
        &self,
        ci0: usize,
        ci1: usize,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&FieldBatch>,
        ant_fields: &[Vec<Vec3>],
        thermal: &FieldBatch,
        kk: usize,
        out: Field3Ptr,
    ) {
        /// Lane-chunk width for the batched scalar sweep: big enough to
        /// amortize per-cell branch hoisting for every realistic batch,
        /// small enough for comfortable stack buffers.
        const SCALAR_LANES: usize = 16;
        let has_ant = ant_fields.iter().any(|f| !f.is_empty());
        let (mxp, myp, mzp) = (mx.as_ptr(), my.as_ptr(), mz.as_ptr());
        let at = |j: usize| unsafe { Vec3::new(*mxp.add(j), *myp.add(j), *mzp.add(j)) };
        // Allocated once and reused across cells; every chunk rewrites
        // lanes `0..sl` before reading them.
        let mut mis = [Vec3::ZERO; SCALAR_LANES];
        let mut hs = [Vec3::ZERO; SCALAR_LANES];
        let mut accs = [Vec3::ZERO; SCALAR_LANES];
        for ci in ci0..ci1 {
            let i = self.kernel.cells[ci] as usize;
            let alpha = self.alpha[i];
            let prefactor = self.prefactor[i];
            let nb = self.kernel.nbrs[ci];
            let (a0, a1) = if has_ant {
                (
                    self.kernel.ant_off[ci] as usize,
                    self.kernel.ant_off[ci + 1] as usize,
                )
            } else {
                (0, 0)
            };
            let mut s0 = 0;
            while s0 < kk {
                let sl = (kk - s0).min(SCALAR_LANES);
                let f0 = i * kk + s0;
                for (t, mi) in mis.iter_mut().enumerate().take(sl) {
                    // Safety: list ranges are disjoint across blocks and
                    // only magnetic lanes are touched; `f0 + t` indexes
                    // lanes of magnetic cell `i`.
                    *mi = at(f0 + t);
                }
                match base {
                    Some(b) => {
                        let bd = b.data();
                        for (t, h) in hs.iter_mut().enumerate().take(sl) {
                            *h = bd.get(f0 + t);
                        }
                    }
                    None => {
                        for h in hs.iter_mut().take(sl) {
                            *h = Vec3::ZERO;
                        }
                    }
                }
                for op in &self.kernel.ops {
                    match *op {
                        FusedTerm::Exchange { coeff_x, coeff_y } => {
                            for acc in accs.iter_mut().take(sl) {
                                *acc = Vec3::ZERO;
                            }
                            if nb[0] != NO_NEIGHBOUR {
                                let n0 = nb[0] as usize * kk + s0;
                                for (t, acc) in accs.iter_mut().enumerate().take(sl) {
                                    *acc += (at(n0 + t) - mis[t]) * coeff_x;
                                }
                            }
                            if nb[1] != NO_NEIGHBOUR {
                                let n0 = nb[1] as usize * kk + s0;
                                for (t, acc) in accs.iter_mut().enumerate().take(sl) {
                                    *acc += (at(n0 + t) - mis[t]) * coeff_x;
                                }
                            }
                            if nb[2] != NO_NEIGHBOUR {
                                let n0 = nb[2] as usize * kk + s0;
                                for (t, acc) in accs.iter_mut().enumerate().take(sl) {
                                    *acc += (at(n0 + t) - mis[t]) * coeff_y;
                                }
                            }
                            if nb[3] != NO_NEIGHBOUR {
                                let n0 = nb[3] as usize * kk + s0;
                                for (t, acc) in accs.iter_mut().enumerate().take(sl) {
                                    *acc += (at(n0 + t) - mis[t]) * coeff_y;
                                }
                            }
                            for (t, h) in hs.iter_mut().enumerate().take(sl) {
                                *h += accs[t];
                            }
                        }
                        FusedTerm::Uniaxial { coeff, axis } => {
                            for (t, h) in hs.iter_mut().enumerate().take(sl) {
                                *h += axis * (coeff * mis[t].dot(axis));
                            }
                        }
                        FusedTerm::ThinFilm { ms } => {
                            for (t, h) in hs.iter_mut().enumerate().take(sl) {
                                h.z -= ms * mis[t].z;
                            }
                        }
                        FusedTerm::Uniform(f) => {
                            for h in hs.iter_mut().take(sl) {
                                *h += f;
                            }
                        }
                    }
                }
                if has_ant {
                    for &ai in &self.kernel.ant_ids[a0..a1] {
                        for (t, h) in hs.iter_mut().enumerate().take(sl) {
                            let f = ant_fields[s0 + t][ai as usize];
                            if f != Vec3::ZERO {
                                *h += f;
                            }
                        }
                    }
                }
                if !thermal.is_empty() {
                    let td = thermal.data();
                    for (t, h) in hs.iter_mut().enumerate().take(sl) {
                        *h += td.get(f0 + t);
                    }
                }
                for t in 0..sl {
                    let mi = mis[t];
                    let mxh = mi.cross(hs[t]);
                    let mxmxh = mi.cross(mxh);
                    // Safety: list ranges are disjoint across blocks and
                    // only magnetic cells are touched here.
                    unsafe { out.write(f0 + t, (mxh + mxmxh * alpha) * prefactor) };
                }
                s0 += sl;
            }
        }
    }

    /// Batched interior sweep (see [`LlgSystem::sweep_interior`]): on an
    /// interior run the K-interleaved neighbour offsets are the
    /// constants `±K` and `±nx·K`, so the branch-free arm is a
    /// straight-line body whose inner member loop runs over consecutive
    /// lanes.
    ///
    /// Unlike the single-system sweep, antennas do not force the whole
    /// mesh onto the generic arm: the run is split at antenna-coverage
    /// boundaries (a per-cell CSR check, done once per cell rather than
    /// once per cell per member), so the uncovered stretches — nearly
    /// everything, since antennas touch a few columns — still take the
    /// branch-free arm. Covered cells evaluate the identical expression
    /// sequence plus their antenna drives, so parity with independent
    /// runs is preserved cell for cell.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn sweep_interior_batch(
        &self,
        seg: Segment,
        std: StdOps,
        mx: &[f64],
        my: &[f64],
        mz: &[f64],
        base: Option<&FieldBatch>,
        ant_fields: &[Vec<Vec3>],
        thermal: &FieldBatch,
        kk: usize,
        out: Field3Ptr,
        #[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))] avx2: bool,
    ) {
        let i0 = self.kernel.cells[seg.ci0 as usize] as usize;
        let len = (seg.ci1 - seg.ci0) as usize;
        let nxk = self.kernel.nx * kk;
        let (mxp, myp, mzp) = (mx.as_ptr(), my.as_ptr(), mz.as_ptr());
        let ap = self.alpha.as_ptr();
        let pp = self.prefactor.as_ptr();
        let has_ant = ant_fields.iter().any(|f| !f.is_empty());
        if thermal.is_empty() && base.is_none() {
            // Only the exchange term is required for the fast arm: the
            // remaining canonical terms are applied conditionally, in
            // the generic ops loop's exact order, so systems without a
            // uniform Zeeman field (the common case — the triangle
            // gates apply no static field) still take this arm.
            if let Some((coeff_x, coeff_y)) = std.ex {
                let (uni, film, zee) = (std.uni, std.film, std.zee);
                // True when the cell at run offset `o` lies under an
                // antenna (a CSR range check, independent of the member).
                let covered = |o: usize| {
                    let ci = seg.ci0 as usize + o;
                    has_ant && self.kernel.ant_off[ci + 1] > self.kernel.ant_off[ci]
                };
                let mut off = 0;
                while off < len {
                    if !covered(off) {
                        // Branch-free stretch: every member of every cell
                        // runs the straight-line body over consecutive
                        // interleaved lanes.
                        let start = off;
                        while off < len && !covered(off) {
                            off += 1;
                        }
                        #[cfg(target_arch = "x86_64")]
                        if avx2 {
                            // Safety: AVX2 support was checked by the
                            // caller; the stretch holds validated
                            // interior lanes.
                            unsafe {
                                interior_stretch_avx2(
                                    i0 + start,
                                    i0 + off,
                                    kk,
                                    nxk,
                                    mxp,
                                    myp,
                                    mzp,
                                    ap,
                                    pp,
                                    coeff_x,
                                    coeff_y,
                                    uni,
                                    film,
                                    zee,
                                    out,
                                )
                            };
                            continue;
                        }
                        // The lane loop is split into a compute phase
                        // writing stack buffers and a store phase
                        // writing the output planes: with no output
                        // stores inside it, the compute loop's memory
                        // accesses are all stride-1 loads plus local
                        // buffers, which the loop vectorizer can prove
                        // independent. The arithmetic is the `Vec3` arm
                        // unfolded component by component in the same
                        // expression order, so each lane's value is
                        // unchanged bit for bit.
                        let (outx, outy, outz) = out.planes();
                        // Zero-initialized once and reused: only lanes
                        // `0..sl` are ever written then read, so the
                        // stale tail is never observed.
                        let mut ox = [0.0f64; INTERIOR_LANES];
                        let mut oy = [0.0f64; INTERIOR_LANES];
                        let mut oz = [0.0f64; INTERIOR_LANES];
                        for i in i0 + start..i0 + off {
                            // Safety: interior-run indices are validated
                            // at build time; interleaved indices scale by
                            // K everywhere.
                            let (alpha, prefactor) = unsafe { (*ap.add(i), *pp.add(i)) };
                            let f0 = i * kk;
                            let mut s0 = 0;
                            while s0 < kk {
                                let sl = (kk - s0).min(INTERIOR_LANES);
                                let c0 = f0 + s0;
                                for t in 0..sl {
                                    let fi = c0 + t;
                                    // Safety: in-bounds interior lanes,
                                    // loads only.
                                    unsafe {
                                        let mix = *mxp.add(fi);
                                        let miy = *myp.add(fi);
                                        let miz = *mzp.add(fi);
                                        let mut accx = 0.0;
                                        let mut accy = 0.0;
                                        let mut accz = 0.0;
                                        accx += (*mxp.add(fi - kk) - mix) * coeff_x;
                                        accy += (*myp.add(fi - kk) - miy) * coeff_x;
                                        accz += (*mzp.add(fi - kk) - miz) * coeff_x;
                                        accx += (*mxp.add(fi + kk) - mix) * coeff_x;
                                        accy += (*myp.add(fi + kk) - miy) * coeff_x;
                                        accz += (*mzp.add(fi + kk) - miz) * coeff_x;
                                        accx += (*mxp.add(fi - nxk) - mix) * coeff_y;
                                        accy += (*myp.add(fi - nxk) - miy) * coeff_y;
                                        accz += (*mzp.add(fi - nxk) - miz) * coeff_y;
                                        accx += (*mxp.add(fi + nxk) - mix) * coeff_y;
                                        accy += (*myp.add(fi + nxk) - miy) * coeff_y;
                                        accz += (*mzp.add(fi + nxk) - miz) * coeff_y;
                                        let mut hx = 0.0;
                                        let mut hy = 0.0;
                                        let mut hz = 0.0;
                                        hx += accx;
                                        hy += accy;
                                        hz += accz;
                                        if let Some((ku, axis)) = uni {
                                            let ani =
                                                ku * (mix * axis.x + miy * axis.y + miz * axis.z);
                                            hx += axis.x * ani;
                                            hy += axis.y * ani;
                                            hz += axis.z * ani;
                                        }
                                        if let Some(ms) = film {
                                            hz -= ms * miz;
                                        }
                                        if let Some(z) = zee {
                                            hx += z.x;
                                            hy += z.y;
                                            hz += z.z;
                                        }
                                        let mxhx = miy * hz - miz * hy;
                                        let mxhy = miz * hx - mix * hz;
                                        let mxhz = mix * hy - miy * hx;
                                        let mxmxhx = miy * mxhz - miz * mxhy;
                                        let mxmxhy = miz * mxhx - mix * mxhz;
                                        let mxmxhz = mix * mxhy - miy * mxhx;
                                        ox[t] = (mxhx + mxmxhx * alpha) * prefactor;
                                        oy[t] = (mxhy + mxmxhy * alpha) * prefactor;
                                        oz[t] = (mxhz + mxmxhz * alpha) * prefactor;
                                    }
                                }
                                // Safety: disjoint index ownership as in
                                // the scalar sweep.
                                for (t, &v) in ox.iter().enumerate().take(sl) {
                                    unsafe { *outx.add(c0 + t) = v };
                                }
                                for (t, &v) in oy.iter().enumerate().take(sl) {
                                    unsafe { *outy.add(c0 + t) = v };
                                }
                                for (t, &v) in oz.iter().enumerate().take(sl) {
                                    unsafe { *outz.add(c0 + t) = v };
                                }
                                s0 += sl;
                            }
                        }
                    } else {
                        // An antenna-covered cell: the same expressions,
                        // then each member's drives for this cell's CSR
                        // ids — the exact sequence the generic arm (and
                        // the single-system sweep) evaluates.
                        let i = i0 + off;
                        let ci = seg.ci0 as usize + off;
                        let a0 = self.kernel.ant_off[ci] as usize;
                        let a1 = self.kernel.ant_off[ci + 1] as usize;
                        let ids = &self.kernel.ant_ids[a0..a1];
                        // Safety: as above.
                        let (alpha, prefactor) = unsafe { (*ap.add(i), *pp.add(i)) };
                        let f0 = i * kk;
                        // `ant_fields` may be empty (no member drives
                        // antennas this step) while all kk members still
                        // sweep, so indexing — not zipping — is correct.
                        #[allow(clippy::needless_range_loop)]
                        for s in 0..kk {
                            let fi = f0 + s;
                            let at = |j: usize| unsafe {
                                Vec3::new(*mxp.add(j), *myp.add(j), *mzp.add(j))
                            };
                            let mi = at(fi);
                            let mut h = Vec3::ZERO;
                            let mut acc = Vec3::ZERO;
                            acc += (at(fi - kk) - mi) * coeff_x;
                            acc += (at(fi + kk) - mi) * coeff_x;
                            acc += (at(fi - nxk) - mi) * coeff_y;
                            acc += (at(fi + nxk) - mi) * coeff_y;
                            h += acc;
                            if let Some((ku, axis)) = uni {
                                h += axis * (ku * mi.dot(axis));
                            }
                            if let Some(ms) = film {
                                h.z -= ms * mi.z;
                            }
                            if let Some(z) = zee {
                                h += z;
                            }
                            for &ai in ids {
                                let f = ant_fields[s][ai as usize];
                                if f != Vec3::ZERO {
                                    h += f;
                                }
                            }
                            let mxh = mi.cross(h);
                            let mxmxh = mi.cross(mxh);
                            // Safety: disjoint index ownership as in the
                            // scalar sweep.
                            unsafe { out.write(fi, (mxh + mxmxh * alpha) * prefactor) };
                        }
                        off += 1;
                    }
                }
                return;
            }
        }
        for off in 0..len {
            let i = i0 + off;
            let ci = seg.ci0 as usize + off;
            // Safety: as in the single-system interior sweep.
            let (alpha, prefactor) = unsafe { (*ap.add(i), *pp.add(i)) };
            let (a0, a1) = if has_ant {
                (
                    self.kernel.ant_off[ci] as usize,
                    self.kernel.ant_off[ci + 1] as usize,
                )
            } else {
                (0, 0)
            };
            let f0 = i * kk;
            // `ant_fields` may be empty (no antennas) while all kk
            // members still sweep, so indexing — not zipping — is
            // correct.
            #[allow(clippy::needless_range_loop)]
            for s in 0..kk {
                let fi = f0 + s;
                let at = |j: usize| unsafe { Vec3::new(*mxp.add(j), *myp.add(j), *mzp.add(j)) };
                let mi = at(fi);
                let mut h = match base {
                    Some(b) => b.data().get(fi),
                    None => Vec3::ZERO,
                };
                if let Some((coeff_x, coeff_y)) = std.ex {
                    let mut acc = Vec3::ZERO;
                    acc += (at(fi - kk) - mi) * coeff_x;
                    acc += (at(fi + kk) - mi) * coeff_x;
                    acc += (at(fi - nxk) - mi) * coeff_y;
                    acc += (at(fi + nxk) - mi) * coeff_y;
                    h += acc;
                }
                if let Some((coeff, axis)) = std.uni {
                    h += axis * (coeff * mi.dot(axis));
                }
                if let Some(ms) = std.film {
                    h.z -= ms * mi.z;
                }
                if let Some(f) = std.zee {
                    h += f;
                }
                if has_ant {
                    for &ai in &self.kernel.ant_ids[a0..a1] {
                        let f = ant_fields[s][ai as usize];
                        if f != Vec3::ZERO {
                            h += f;
                        }
                    }
                }
                if !thermal.is_empty() {
                    h += thermal.data().get(fi);
                }
                let mxh = mi.cross(h);
                let mxmxh = mi.cross(mxh);
                // Safety: disjoint index ownership as in the scalar sweep.
                unsafe { out.write(fi, (mxh + mxmxh * alpha) * prefactor) };
            }
        }
    }

    /// Maximum torque |dm/dt| over all cells, in 1/s — used as a
    /// convergence criterion by [`crate::sim::Simulation::relax`].
    ///
    /// Evaluated block-parallel with a per-block running maximum, so no
    /// full-mesh buffers are allocated; only a non-fusable term forces
    /// field buffers (it runs through the AoS reference path).
    pub fn max_torque(&self, m: &Field3, t: f64) -> f64 {
        let pre: Option<Field3> = if self.kernel.unfused.is_empty() {
            None
        } else {
            // Non-fusable terms use the thread-safe AoS reference path;
            // the layout round-trip is a pure permutation (bitwise
            // lossless).
            let mv = m.to_vec();
            let mut hv = vec![Vec3::ZERO; self.len()];
            for &ti in &self.kernel.unfused {
                self.terms[ti].accumulate(&mv, t, &mut hv);
            }
            Some(Field3::from_vec3s(&hv))
        };
        let base = pre.as_ref();
        let ant_fields = self.antenna_fields(t);
        let (mx, my, mz) = (m.xs(), m.ys(), m.zs());
        let partials = self.team.map_blocks(|b| {
            let block = self.kernel.blocks[b];
            let mut local: f64 = 0.0;
            for ci in block.list.0..block.list.1 {
                let i = self.kernel.cells[ci] as usize;
                let mi = Vec3::new(mx[i], my[i], mz[i]);
                let h = self.fused_field(ci, i, mi, mx, my, mz, base, &ant_fields);
                local = local.max(self.torque(i, mi, h).norm());
            }
            local
        });
        partials.into_iter().fold(0.0, f64::max)
    }

    /// Sum of the energies of all conservative field terms, in joules.
    ///
    /// Each term's field is evaluated through `accumulate_par` with the
    /// worker team and the system-owned per-term scratch — the same
    /// lock-free path the integrator uses, so the demag term needs no
    /// shared fallback buffer. The per-cell arithmetic (and the serial
    /// dot-product reduction) matches the reference
    /// [`FieldTerm::energy`] exactly, so the value is bitwise unchanged.
    pub fn energy(&mut self, m: &Field3, t: f64, ms: f64, cell_volume: f64) -> f64 {
        let n = m.len();
        let mut h = Field3::zeros(n);
        let LlgSystem {
            terms,
            term_scratch,
            team,
            ..
        } = self;
        let (mx, my, mz) = (m.xs(), m.ys(), m.zs());
        let mut total = 0.0;
        for (term, scratch) in terms.iter().zip(term_scratch.iter_mut()) {
            h.fill(Vec3::ZERO);
            let s = scratch
                .as_mut()
                .map(|s| &mut **s as &mut (dyn std::any::Any + Send + Sync));
            term.accumulate_par(m, t, &mut h, team, s);
            let (hx, hy, hz) = (h.xs(), h.ys(), h.zs());
            let mut dot = 0.0;
            for i in 0..n {
                dot += mx[i] * hx[i] + my[i] * hy[i] + mz[i] * hz[i];
            }
            total += -term.energy_prefactor() * crate::MU0 * ms * cell_volume * dot;
        }
        total
    }
}

impl std::fmt::Debug for LlgSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlgSystem")
            .field("cells", &self.len())
            .field(
                "terms",
                &self.terms.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("antennas", &self.antennas.len())
            .field("gamma", &self.gamma)
            .field("threads", &self.team.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excitation::Drive;
    use crate::field::anisotropy::UniaxialAnisotropy;
    use crate::field::demag::ThinFilmDemag;
    use crate::field::exchange::Exchange;
    use crate::field::zeeman::Zeeman;
    use crate::material::Material;
    use crate::mesh::Mesh;
    use crate::GAMMA;

    fn single_cell_system(alpha: f64, field: Vec3) -> LlgSystem {
        SystemSpec {
            terms: vec![Box::new(Zeeman::uniform(field))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![alpha],
            gamma: GAMMA,
            mask: vec![true],
            nx: 1,
            threads: 1,
        }
        .build()
    }

    #[test]
    fn torque_is_zero_at_equilibrium() {
        let sys = single_cell_system(0.01, Vec3::Z * 1e5);
        let m = Field3::from_vec3s(&[Vec3::Z]);
        assert!(sys.max_torque(&m, 0.0) < 1e-6);
    }

    #[test]
    fn undamped_motion_is_pure_precession() {
        // α = 0: dm/dt ⊥ m and ⊥ H; |dm/dt| = γμ₀|H| sinθ.
        let h0 = 1e5;
        let mut sys = single_cell_system(0.0, Vec3::Z * h0);
        let m = Field3::from_vec3s(&[Vec3::X]);
        let mut dmdt = Field3::zeros(1);
        let mut h = Field3::zeros(1);
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // m×H = X×Z·h0 = -Y·h0; prefactor −γμ₀ ⇒ dm/dt = +γμ₀h0·Y
        let expected = GAMMA * MU0 * h0;
        assert!((dmdt.get(0).y - expected).abs() / expected < 1e-12);
        assert!(dmdt.get(0).x.abs() < 1e-3);
        assert!(dmdt.get(0).z.abs() < 1e-3);
    }

    #[test]
    fn damping_pulls_towards_field() {
        let mut sys = single_cell_system(0.1, Vec3::Z * 1e5);
        let m = Field3::from_vec3s(&[Vec3::X]);
        let mut dmdt = Field3::zeros(1);
        let mut h = Field3::zeros(1);
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // The damping term rotates m towards +z.
        assert!(
            dmdt.get(0).z > 0.0,
            "damped motion must approach the field axis"
        );
    }

    #[test]
    fn torque_preserves_magnitude() {
        // dm/dt ⊥ m always, so d|m|²/dt = 2 m·dm/dt = 0.
        let mut sys = single_cell_system(0.25, Vec3::new(3e4, -2e4, 5e4));
        let m = Field3::from_vec3s(&[Vec3::new(0.6, 0.64, 0.48).normalized()]);
        let mut dmdt = Field3::zeros(1);
        let mut h = Field3::zeros(1);
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        assert!(m.get(0).dot(dmdt.get(0)).abs() < 1e-3);
    }

    #[test]
    fn vacuum_cells_have_zero_torque() {
        let mut sys = SystemSpec {
            terms: vec![Box::new(Zeeman::uniform(Vec3::Z * 1e5))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![0.01],
            gamma: GAMMA,
            mask: vec![false],
            nx: 1,
            threads: 1,
        }
        .build();
        let m = Field3::from_vec3s(&[Vec3::X]);
        assert_eq!(sys.max_torque(&m, 0.0), 0.0);
        let mut dmdt = Field3::from_vec3s(&[Vec3::X]);
        let mut h = Field3::zeros(1);
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        assert_eq!(dmdt.get(0), Vec3::ZERO, "rhs must overwrite vacuum torque");
    }

    #[test]
    fn thermal_buffer_enters_the_field() {
        let mut sys = single_cell_system(0.01, Vec3::ZERO);
        sys.thermal = vec![Vec3::X * 123.0];
        let m = vec![Vec3::Z];
        let mut h = vec![Vec3::ZERO];
        sys.effective_field(&m, 0.0, &mut h);
        assert!((h[0].x - 123.0).abs() < 1e-12);
        // And the fused path sees it too: torque on m ∥ ẑ under H ∥ x̂.
        assert!(sys.max_torque(&Field3::from_vec3s(&m), 0.0) > 0.0);
    }

    #[test]
    fn higher_damping_slows_precession_rate() {
        // The 1/(1+α²) prefactor reduces the precession component.
        let m = Field3::from_vec3s(&[Vec3::X]);
        let mut dmdt_lo = Field3::zeros(1);
        let mut dmdt_hi = Field3::zeros(1);
        let mut h = Field3::zeros(1);
        single_cell_system(0.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_lo, &mut h);
        single_cell_system(1.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_hi, &mut h);
        assert!((dmdt_hi.get(0).y.abs() - dmdt_lo.get(0).y.abs() / 2.0).abs() < 1.0);
    }

    /// Builds a full multi-term system on a masked mesh with an antenna,
    /// for cross-checking the fused kernel against the reference path.
    fn masked_multiterm_system(threads: usize) -> (LlgSystem, Vec<Vec3>) {
        let mut mesh = Mesh::new(16, 8, [5e-9, 5e-9, 1e-9]).unwrap();
        // Punch some vacuum holes, including on a block boundary.
        mesh.set_magnetic(3, 2, false);
        mesh.set_magnetic(7, 4, false);
        mesh.set_magnetic(0, 0, false);
        let material = Material::fecob();
        let antenna = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            20e-9,
            40e-9,
            Vec3::X,
            Drive::logic_cw(3e3, 10e9, 0.1),
        );
        let n = mesh.cell_count();
        let m: Vec<Vec3> = (0..n)
            .map(|i| {
                if mesh.mask()[i] {
                    Vec3::new(0.1 * (i as f64).sin(), 0.1 * (i as f64).cos(), 1.0).normalized()
                } else {
                    Vec3::ZERO
                }
            })
            .collect();
        let sys = SystemSpec {
            terms: vec![
                Box::new(Exchange::new(&mesh, &material)),
                Box::new(UniaxialAnisotropy::new(&mesh, &material)),
                Box::new(ThinFilmDemag::new(&mesh, &material)),
                Box::new(Zeeman::uniform(Vec3::new(1e3, 0.0, 2e3))),
            ],
            antennas: vec![antenna],
            thermal: Vec::new(),
            alpha: (0..n).map(|i| 0.004 + 1e-5 * i as f64).collect(),
            gamma: material.gamma(),
            mask: mesh.mask().to_vec(),
            nx: mesh.nx(),
            threads,
        }
        .build();
        (sys, m)
    }

    #[test]
    fn fused_rhs_matches_reference_effective_field() {
        let (mut sys, m) = masked_multiterm_system(1);
        let t = 13e-12;
        let n = m.len();
        let ms = Field3::from_vec3s(&m);
        let mut dmdt = Field3::zeros(n);
        let mut scratch = Field3::zeros(n);
        sys.rhs(&ms, t, &mut dmdt, &mut scratch);
        // Reference: term-by-term field, then the LLG formula.
        let mut h = vec![Vec3::ZERO; n];
        sys.effective_field(&m, t, &mut h);
        for i in 0..n {
            if !sys.mask[i] {
                assert_eq!(dmdt.get(i), Vec3::ZERO);
                continue;
            }
            let alpha = sys.alpha[i];
            let prefactor = -sys.gamma * MU0 / (1.0 + alpha * alpha);
            let mxh = m[i].cross(h[i]);
            let expected = (mxh + m[i].cross(mxh) * alpha) * prefactor;
            assert_eq!(dmdt.get(i), expected, "cell {i} diverges from reference");
        }
    }

    /// A full film with exactly the canonical term set and no antennas —
    /// the configuration the branch-free interior sweep specializes on.
    fn full_film_std_system(threads: usize) -> (LlgSystem, Vec<Vec3>) {
        let mesh = Mesh::new(32, 16, [5e-9, 5e-9, 1e-9]).unwrap();
        let material = Material::fecob();
        let n = mesh.cell_count();
        let m: Vec<Vec3> = (0..n)
            .map(|i| {
                Vec3::new(
                    0.3 * (0.7 * i as f64).sin(),
                    0.2 * (0.4 * i as f64).cos(),
                    1.0,
                )
                .normalized()
            })
            .collect();
        let sys = SystemSpec {
            terms: vec![
                Box::new(Exchange::new(&mesh, &material)),
                Box::new(UniaxialAnisotropy::new(&mesh, &material)),
                Box::new(ThinFilmDemag::new(&mesh, &material)),
                Box::new(Zeeman::uniform(Vec3::new(0.0, 0.0, 5e4))),
            ],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![material.gilbert_damping(); n],
            gamma: material.gamma(),
            mask: vec![true; n],
            nx: mesh.nx(),
            threads,
        }
        .build();
        (sys, m)
    }

    #[test]
    fn branch_free_interior_sweep_matches_reference() {
        // The full-film std-term fast arm must agree bitwise with the
        // term-by-term reference (which exercises none of the interior
        // specializations), for serial and threaded partitions alike.
        let t = 0.0;
        let (reference_sys, m) = full_film_std_system(1);
        let n = m.len();
        let mut h = vec![Vec3::ZERO; n];
        reference_sys.effective_field(&m, t, &mut h);
        for threads in [1, 3, 4] {
            let (mut sys, m2) = full_film_std_system(threads);
            assert_eq!(m, m2);
            let ms = Field3::from_vec3s(&m2);
            let mut dmdt = Field3::zeros(n);
            let mut scratch = Field3::zeros(n);
            sys.rhs(&ms, t, &mut dmdt, &mut scratch);
            for i in 0..n {
                let alpha = sys.alpha[i];
                let prefactor = -sys.gamma * MU0 / (1.0 + alpha * alpha);
                let mxh = m[i].cross(h[i]);
                let expected = (mxh + m[i].cross(mxh) * alpha) * prefactor;
                assert_eq!(
                    dmdt.get(i),
                    expected,
                    "cell {i} diverges from reference at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn rhs_is_bitwise_identical_across_thread_counts() {
        let t = 7e-12;
        let (mut serial, m) = masked_multiterm_system(1);
        let n = m.len();
        let ms = Field3::from_vec3s(&m);
        let mut expected = Field3::zeros(n);
        let mut scratch = Field3::zeros(n);
        serial.rhs(&ms, t, &mut expected, &mut scratch);
        let torque_serial = serial.max_torque(&ms, t);
        for threads in [2, 3, 4, 7] {
            let (mut sys, m2) = masked_multiterm_system(threads);
            assert_eq!(m, m2);
            let ms2 = Field3::from_vec3s(&m2);
            let mut dmdt = Field3::zeros(n);
            sys.rhs(&ms2, t, &mut dmdt, &mut scratch);
            assert_eq!(dmdt, expected, "threads={threads} diverged");
            assert_eq!(sys.max_torque(&ms2, t), torque_serial);
        }
    }

    #[test]
    fn stage_fusion_covers_every_cell_exactly_once() {
        // The fuse ranges must cover every cell — magnetic and vacuum
        // alike — exactly once, with the vacuum cells reporting zero
        // torque in `k`. That is what lets the integrators fold their
        // old full-mesh stage passes into the fuse hook without changing
        // which cells they touch.
        for threads in [1, 3, 4] {
            let (mut sys, m) = masked_multiterm_system(threads);
            let n = m.len();
            let ms = Field3::from_vec3s(&m);
            let mut k = Field3::zeros(n);
            let mut scratch = Field3::zeros(n);
            let hits: Vec<std::sync::atomic::AtomicU32> = (0..n)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect();
            sys.rhs_stage(&ms, 3e-12, &mut k, &mut scratch, |i0, i1, kv| {
                for (i, hit) in hits.iter().enumerate().take(i1).skip(i0) {
                    hit.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let ki = unsafe { kv.read(i) };
                    if !sys_mask_is_magnetic(&m, i) {
                        assert_eq!(ki, Vec3::ZERO, "vacuum cell {i} got nonzero k");
                    }
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(std::sync::atomic::Ordering::Relaxed),
                    1,
                    "cell {i} fused {threads} threads"
                );
            }
        }
    }

    /// The multiterm fixture zeroes m on vacuum cells, so a nonzero m
    /// marks a magnetic cell.
    fn sys_mask_is_magnetic(m: &[Vec3], i: usize) -> bool {
        m[i] != Vec3::ZERO
    }

    #[test]
    fn batched_rhs_is_bitwise_identical_to_member_runs() {
        use crate::field3::FieldBatch;
        // K members share geometry/terms but differ in state, drive
        // phase (emulated by evaluating the antennas at different
        // times) and thermal realization. The batched sweep must
        // reproduce each member's independent rhs bit for bit, at
        // several thread counts.
        let kk = 3;
        let times = [3e-12, 7.5e-12, 11e-12];
        let (probe_sys, m0) = masked_multiterm_system(1);
        let n = m0.len();
        // Distinct per-member states and thermal buffers.
        let member_m: Vec<Vec<Vec3>> = (0..kk)
            .map(|s| {
                m0.iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if v == Vec3::ZERO {
                            v
                        } else {
                            Vec3::new(v.x + 0.01 * s as f64, v.y, v.z + 0.02 * (i % 5) as f64)
                                .normalized()
                        }
                    })
                    .collect()
            })
            .collect();
        let member_thermal: Vec<Vec<Vec3>> = (0..kk)
            .map(|s| {
                (0..n)
                    .map(|i| Vec3::new(1.0 + s as f64, i as f64 * 0.5, -(s as f64)) * 10.0)
                    .collect()
            })
            .collect();
        // Reference: independent single-system runs.
        let mut expected: Vec<Field3> = Vec::new();
        for s in 0..kk {
            let (mut sys, _) = masked_multiterm_system(1);
            sys.thermal = member_thermal[s].clone();
            let ms = Field3::from_vec3s(&member_m[s]);
            let mut dmdt = Field3::zeros(n);
            let mut scratch = Field3::zeros(n);
            sys.rhs(&ms, times[s], &mut dmdt, &mut scratch);
            expected.push(dmdt);
        }
        let ant_fields: Vec<Vec<Vec3>> =
            times.iter().map(|&t| probe_sys.antenna_fields(t)).collect();
        for threads in [1, 2, 4] {
            let (sys, _) = masked_multiterm_system(threads);
            let mut y = FieldBatch::zeros(n, kk);
            let mut thermal = FieldBatch::zeros(n, kk);
            for s in 0..kk {
                y.load_member(s, member_m[s].as_slice());
                thermal.load_member(s, member_thermal[s].as_slice());
            }
            let mut k_out = FieldBatch::zeros(n, kk);
            sys.rhs_stage_batch(&y, &mut k_out, None, &ant_fields, &thermal, |_, _, _| {});
            for (s, want) in expected.iter().enumerate().take(kk) {
                let mut got = Field3::zeros(n);
                k_out.store_member(s, &mut got);
                assert_eq!(&got, want, "member {s} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn batched_fuse_covers_interleaved_ranges_once() {
        use crate::field3::FieldBatch;
        let kk = 2;
        for threads in [1, 3] {
            let (sys, m) = masked_multiterm_system(threads);
            let n = m.len();
            let mut y = FieldBatch::zeros(n, kk);
            for s in 0..kk {
                y.load_member(s, m.as_slice());
            }
            let mut k_out = FieldBatch::zeros(n, kk);
            let thermal = FieldBatch::empty(kk);
            let hits: Vec<std::sync::atomic::AtomicU32> = (0..n * kk)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect();
            let ant_fields: Vec<Vec<Vec3>> = (0..kk).map(|_| sys.antenna_fields(1e-12)).collect();
            sys.rhs_stage_batch(&y, &mut k_out, None, &ant_fields, &thermal, |i0, i1, _| {
                for hit in hits.iter().take(i1).skip(i0) {
                    hit.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
            for (fi, h) in hits.iter().enumerate() {
                // Magnetic lanes fuse exactly once; vacuum lanes are
                // skipped entirely (their buffers stay zero).
                let expected = if m[fi / kk] == Vec3::ZERO { 0 } else { 1 };
                assert_eq!(
                    h.load(std::sync::atomic::Ordering::Relaxed),
                    expected,
                    "flat index {fi} fused {threads} threads"
                );
            }
        }
    }

    #[test]
    fn swap_alpha_refreshes_the_prefactor_table() {
        let (mut sys, m) = masked_multiterm_system(2);
        let ms = Field3::from_vec3s(&m);
        let t = 5e-12;
        let before = sys.max_torque(&ms, t);
        let mut relax_map = vec![0.5; sys.len()];
        sys.swap_alpha(&mut relax_map);
        let damped = sys.max_torque(&ms, t);
        assert_ne!(before, damped, "new damping map must change the torque");
        sys.swap_alpha(&mut relax_map);
        assert_eq!(
            sys.max_torque(&ms, t),
            before,
            "restoring the damping map must restore the torque bitwise"
        );
        assert!(relax_map.iter().all(|&a| a == 0.5));
    }

    #[test]
    fn antenna_map_follows_add_and_clear() {
        let (mut sys, m) = masked_multiterm_system(2);
        let m = Field3::from_vec3s(&m);
        let t = 11e-12;
        let with_antenna = sys.max_torque(&m, t);
        let saved = std::mem::take(&mut sys.antennas);
        let without = sys.max_torque(&m, t);
        assert_ne!(with_antenna, without, "antenna must influence the torque");
        sys.antennas = saved;
        assert_eq!(sys.max_torque(&m, t), with_antenna);
        sys.clear_antennas();
        assert_eq!(sys.max_torque(&m, t), without);
    }
}
