//! The Landau–Lifshitz–Gilbert right-hand side.
//!
//! Equation (1) of the paper in its explicit (Landau–Lifshitz) form:
//!
//! `dm/dt = −γμ₀/(1+α²)·[ m×H_eff + α·m×(m×H_eff) ]`
//!
//! with per-cell damping α (so absorbing frames are just a damping map)
//! and `H_eff` the sum of all [`crate::field::FieldTerm`]s, the antenna
//! fields and the per-step thermal realization.

use crate::excitation::Antenna;
use crate::field::FieldTerm;
use crate::math::Vec3;
use crate::MU0;

/// The assembled LLG system: field terms, antennas, damping map and the
/// frozen thermal-field buffer for the current step.
///
/// Constructed by [`crate::sim::SimulationBuilder`]; integrators only call
/// [`LlgSystem::rhs`].
pub struct LlgSystem {
    pub(crate) terms: Vec<Box<dyn FieldTerm>>,
    pub(crate) antennas: Vec<Antenna>,
    /// Thermal field realization for the current step (all zeros at T=0).
    pub(crate) thermal: Vec<Vec3>,
    /// Per-cell Gilbert damping.
    pub(crate) alpha: Vec<f64>,
    /// |γ| in rad/(s·T).
    pub(crate) gamma: f64,
    pub(crate) mask: Vec<bool>,
}

impl LlgSystem {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True if the system has no cells (never the case after a successful
    /// build).
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Computes the effective field (A/m) into `h` at time `t`.
    pub fn effective_field(&self, m: &[Vec3], t: f64, h: &mut [Vec3]) {
        h.fill(Vec3::ZERO);
        for term in &self.terms {
            term.accumulate(m, t, h);
        }
        for antenna in &self.antennas {
            antenna.accumulate(t, h);
        }
        if !self.thermal.is_empty() {
            for (hi, th) in h.iter_mut().zip(self.thermal.iter()) {
                *hi += *th;
            }
        }
    }

    /// Evaluates `dm/dt` into `dmdt`, using `h_scratch` for the field.
    ///
    /// Vacuum cells get zero torque.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if buffer lengths mismatch.
    pub fn rhs(&self, m: &[Vec3], t: f64, dmdt: &mut [Vec3], h_scratch: &mut [Vec3]) {
        debug_assert_eq!(m.len(), self.len());
        debug_assert_eq!(dmdt.len(), self.len());
        debug_assert_eq!(h_scratch.len(), self.len());
        self.effective_field(m, t, h_scratch);
        for i in 0..m.len() {
            if !self.mask[i] {
                dmdt[i] = Vec3::ZERO;
                continue;
            }
            let alpha = self.alpha[i];
            let prefactor = -self.gamma * MU0 / (1.0 + alpha * alpha);
            let mi = m[i];
            let mxh = mi.cross(h_scratch[i]);
            let mxmxh = mi.cross(mxh);
            dmdt[i] = (mxh + mxmxh * alpha) * prefactor;
        }
    }

    /// Maximum torque |dm/dt| over all cells, in 1/s — used as a
    /// convergence criterion by [`crate::sim::Simulation::relax`].
    pub fn max_torque(&self, m: &[Vec3], t: f64) -> f64 {
        let mut dmdt = vec![Vec3::ZERO; self.len()];
        let mut h = vec![Vec3::ZERO; self.len()];
        self.rhs(m, t, &mut dmdt, &mut h);
        dmdt.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }

    /// Sum of the energies of all conservative field terms, in joules.
    pub fn energy(&self, m: &[Vec3], t: f64, ms: f64, cell_volume: f64) -> f64 {
        self.terms
            .iter()
            .map(|term| term.energy(m, t, ms, cell_volume))
            .sum()
    }
}

impl std::fmt::Debug for LlgSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlgSystem")
            .field("cells", &self.len())
            .field(
                "terms",
                &self.terms.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("antennas", &self.antennas.len())
            .field("gamma", &self.gamma)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::zeeman::Zeeman;
    use crate::GAMMA;

    fn single_cell_system(alpha: f64, field: Vec3) -> LlgSystem {
        LlgSystem {
            terms: vec![Box::new(Zeeman::uniform(field))],
            antennas: Vec::new(),
            thermal: Vec::new(),
            alpha: vec![alpha],
            gamma: GAMMA,
            mask: vec![true],
        }
    }

    #[test]
    fn torque_is_zero_at_equilibrium() {
        let sys = single_cell_system(0.01, Vec3::Z * 1e5);
        let m = vec![Vec3::Z];
        assert!(sys.max_torque(&m, 0.0) < 1e-6);
    }

    #[test]
    fn undamped_motion_is_pure_precession() {
        // α = 0: dm/dt ⊥ m and ⊥ H; |dm/dt| = γμ₀|H| sinθ.
        let h0 = 1e5;
        let sys = single_cell_system(0.0, Vec3::Z * h0);
        let m = vec![Vec3::X];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // m×H = X×Z·h0 = -Y·h0; prefactor −γμ₀ ⇒ dm/dt = +γμ₀h0·Y
        let expected = GAMMA * MU0 * h0;
        assert!((dmdt[0].y - expected).abs() / expected < 1e-12);
        assert!(dmdt[0].x.abs() < 1e-3);
        assert!(dmdt[0].z.abs() < 1e-3);
    }

    #[test]
    fn damping_pulls_towards_field() {
        let sys = single_cell_system(0.1, Vec3::Z * 1e5);
        let m = vec![Vec3::X];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        // The damping term rotates m towards +z.
        assert!(
            dmdt[0].z > 0.0,
            "damped motion must approach the field axis"
        );
    }

    #[test]
    fn torque_preserves_magnitude() {
        // dm/dt ⊥ m always, so d|m|²/dt = 2 m·dm/dt = 0.
        let sys = single_cell_system(0.25, Vec3::new(3e4, -2e4, 5e4));
        let m = vec![Vec3::new(0.6, 0.64, 0.48).normalized()];
        let mut dmdt = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        sys.rhs(&m, 0.0, &mut dmdt, &mut h);
        assert!(m[0].dot(dmdt[0]).abs() < 1e-3);
    }

    #[test]
    fn vacuum_cells_have_zero_torque() {
        let mut sys = single_cell_system(0.01, Vec3::Z * 1e5);
        sys.mask = vec![false];
        let m = vec![Vec3::X];
        assert_eq!(sys.max_torque(&m, 0.0), 0.0);
    }

    #[test]
    fn thermal_buffer_enters_the_field() {
        let mut sys = single_cell_system(0.01, Vec3::ZERO);
        sys.thermal = vec![Vec3::X * 123.0];
        let m = vec![Vec3::Z];
        let mut h = vec![Vec3::ZERO];
        sys.effective_field(&m, 0.0, &mut h);
        assert!((h[0].x - 123.0).abs() < 1e-12);
    }

    #[test]
    fn higher_damping_slows_precession_rate() {
        // The 1/(1+α²) prefactor reduces the precession component.
        let m = vec![Vec3::X];
        let mut dmdt_lo = vec![Vec3::ZERO];
        let mut dmdt_hi = vec![Vec3::ZERO];
        let mut h = vec![Vec3::ZERO];
        single_cell_system(0.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_lo, &mut h);
        single_cell_system(1.0, Vec3::Z * 1e5).rhs(&m, 0.0, &mut dmdt_hi, &mut h);
        assert!((dmdt_hi[0].y.abs() - dmdt_lo[0].y.abs() / 2.0).abs() < 1.0);
    }
}
