//! Spatially varying damping and absorbing boundaries.
//!
//! Spin-wave devices are simulated as finite windows of an ideally
//! infinite film; without countermeasures, waves reflect off the mesh
//! edges and corrupt the interference pattern. The standard fix — used by
//! the paper's MuMax3 setups — is a frame of smoothly increasing Gilbert
//! damping around the simulation window, which absorbs incident waves
//! before they reach the hard edge.

use crate::mesh::Mesh;

/// An absorbing frame: damping ramps from the material value `α₀` at the
/// inner edge of the frame to `α_max` at the mesh boundary.
///
/// ```
/// use magnum::damping::AbsorbingFrame;
/// let frame = AbsorbingFrame::new(8, 0.5);
/// assert_eq!(frame.width_cells(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorbingFrame {
    width_cells: usize,
    alpha_max: f64,
}

impl AbsorbingFrame {
    /// Creates a frame `width_cells` wide with edge damping `alpha_max`.
    pub fn new(width_cells: usize, alpha_max: f64) -> Self {
        AbsorbingFrame {
            width_cells,
            alpha_max: alpha_max.max(0.0),
        }
    }

    /// Frame width in cells.
    pub fn width_cells(&self) -> usize {
        self.width_cells
    }

    /// Damping at the outermost cells.
    pub fn alpha_max(&self) -> f64 {
        self.alpha_max
    }

    /// Builds the per-cell damping map for `mesh`, starting from the base
    /// damping `alpha0`.
    ///
    /// The profile is quadratic in the penetration depth into the frame,
    /// which minimizes the impedance mismatch (and therefore reflections)
    /// at the inner frame edge.
    pub fn damping_map(&self, mesh: &Mesh, alpha0: f64) -> Vec<f64> {
        let nx = mesh.nx();
        let ny = mesh.ny();
        let w = self.width_cells;
        let mut alpha = vec![alpha0; mesh.cell_count()];
        if w == 0 || self.alpha_max <= alpha0 {
            return alpha;
        }
        for iy in 0..ny {
            for ix in 0..nx {
                // Distance (in cells) to the nearest mesh edge.
                let d = ix.min(nx - 1 - ix).min(iy).min(ny - 1 - iy);
                if d < w {
                    // 0 at the inner frame edge, 1 at the mesh boundary.
                    let x = (w - d) as f64 / w as f64;
                    alpha[iy * nx + ix] = alpha0 + (self.alpha_max - alpha0) * x * x;
                }
            }
        }
        alpha
    }
}

/// Builds a damping map with absorbing strips only at the ±x ends (the
/// common configuration for straight waveguides where the transverse
/// edges are true physical boundaries).
pub fn absorbing_ends_map(
    mesh: &Mesh,
    alpha0: f64,
    width_cells: usize,
    alpha_max: f64,
) -> Vec<f64> {
    let nx = mesh.nx();
    let ny = mesh.ny();
    let mut alpha = vec![alpha0; mesh.cell_count()];
    if width_cells == 0 || alpha_max <= alpha0 {
        return alpha;
    }
    for iy in 0..ny {
        for ix in 0..nx {
            let d = ix.min(nx - 1 - ix);
            if d < width_cells {
                let x = (width_cells - d) as f64 / width_cells as f64;
                alpha[iy * nx + ix] = alpha0 + (alpha_max - alpha0) * x * x;
            }
        }
    }
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(32, 16, [5e-9, 5e-9, 1e-9]).unwrap()
    }

    #[test]
    fn interior_keeps_base_damping() {
        let m = mesh();
        let map = AbsorbingFrame::new(4, 0.5).damping_map(&m, 0.004);
        let centre = m.linear_index(16, 8);
        assert_eq!(map[centre], 0.004);
    }

    #[test]
    fn corners_reach_alpha_max() {
        let m = mesh();
        let map = AbsorbingFrame::new(4, 0.5).damping_map(&m, 0.004);
        let corner = m.linear_index(0, 0);
        assert!((map[corner] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_is_monotonic_into_the_frame() {
        let m = mesh();
        let map = AbsorbingFrame::new(6, 0.5).damping_map(&m, 0.004);
        let mid_y = 8;
        for ix in 0..6 {
            let outer = map[m.linear_index(ix, mid_y)];
            let inner = map[m.linear_index(ix + 1, mid_y)];
            assert!(
                outer >= inner,
                "damping should decrease moving inwards: α({ix}) = {outer} < α({}) = {inner}",
                ix + 1
            );
        }
    }

    #[test]
    fn zero_width_frame_is_uniform() {
        let m = mesh();
        let map = AbsorbingFrame::new(0, 0.5).damping_map(&m, 0.01);
        assert!(map.iter().all(|&a| a == 0.01));
    }

    #[test]
    fn alpha_max_below_base_is_ignored() {
        let m = mesh();
        let map = AbsorbingFrame::new(4, 0.001).damping_map(&m, 0.01);
        assert!(map.iter().all(|&a| a == 0.01));
    }

    #[test]
    fn ends_map_leaves_transverse_edges_alone() {
        let m = mesh();
        let map = absorbing_ends_map(&m, 0.004, 4, 0.5);
        // Transverse edge, centre x: base damping.
        assert_eq!(map[m.linear_index(16, 0)], 0.004);
        // Longitudinal ends: ramped.
        assert!((map[m.linear_index(0, 8)] - 0.5).abs() < 1e-12);
        assert!((map[m.linear_index(31, 8)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quadratic_ramp_shape() {
        let m = mesh();
        let w = 8;
        let map = absorbing_ends_map(&m, 0.0, w, 1.0);
        // d cells from the edge -> ((w-d)/w)².
        for d in 0..w {
            let expected = ((w - d) as f64 / w as f64).powi(2);
            let got = map[m.linear_index(d, 8)];
            assert!(
                (got - expected).abs() < 1e-12,
                "d = {d}: {got} vs {expected}"
            );
        }
    }
}
