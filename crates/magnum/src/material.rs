//! Magnetic material parameters.
//!
//! The solver is single-material per simulation (per-cell saturation
//! scaling is available for the trapezoidal-cross-section variability
//! study); the builder validates all parameters against their physical
//! ranges. The Fe₆₀Co₂₀B₂₀ preset matches §IV-A of the paper exactly.

use crate::error::MagnumError;
use crate::math::Vec3;
use crate::{GAMMA, MU0};

/// Validated magnetic material parameters.
///
/// ```
/// use magnum::Material;
/// let fecob = Material::fecob();
/// assert_eq!(fecob.saturation_magnetization(), 1100e3);
/// assert!(fecob.is_perpendicular_film());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    ms: f64,
    aex: f64,
    alpha: f64,
    ku1: f64,
    anisotropy_axis: Vec3,
    gamma: f64,
}

impl Material {
    /// Starts building a material; all parameters default to zero except
    /// the gyromagnetic ratio.
    pub fn builder() -> MaterialBuilder {
        MaterialBuilder::default()
    }

    /// The Fe₆₀Co₂₀B₂₀ parameters used in the paper (§IV-A, after \[39\]):
    /// Ms = 1100 kA/m, Aex = 18.5 pJ/m, α = 0.004, Ku = 0.832 MJ/m³ with a
    /// perpendicular (ẑ) easy axis.
    pub fn fecob() -> Material {
        Material::builder()
            .saturation_magnetization(1100e3)
            .exchange_stiffness(18.5e-12)
            .gilbert_damping(0.004)
            .uniaxial_anisotropy(0.832e6, Vec3::Z)
            .build()
            .expect("FeCoB preset parameters are valid")
    }

    /// Saturation magnetization Ms in A/m.
    #[inline]
    pub fn saturation_magnetization(&self) -> f64 {
        self.ms
    }

    /// Exchange stiffness Aex in J/m.
    #[inline]
    pub fn exchange_stiffness(&self) -> f64 {
        self.aex
    }

    /// Gilbert damping constant α (dimensionless).
    #[inline]
    pub fn gilbert_damping(&self) -> f64 {
        self.alpha
    }

    /// First-order uniaxial anisotropy constant Ku₁ in J/m³.
    #[inline]
    pub fn anisotropy_constant(&self) -> f64 {
        self.ku1
    }

    /// Unit easy axis of the uniaxial anisotropy.
    #[inline]
    pub fn anisotropy_axis(&self) -> Vec3 {
        self.anisotropy_axis
    }

    /// Gyromagnetic ratio |γ| in rad/(s·T).
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Exchange length √(2A/(μ₀Ms²)) in metres — cells should not be much
    /// larger than this.
    pub fn exchange_length(&self) -> f64 {
        if self.ms == 0.0 {
            return f64::INFINITY;
        }
        (2.0 * self.aex / (MU0 * self.ms * self.ms)).sqrt()
    }

    /// Effective perpendicular anisotropy field 2Ku/(μ₀Ms) − Ms in A/m
    /// (anisotropy field minus the thin-film demag field).
    ///
    /// Positive means the film magnetizes out-of-plane — the forward-volume
    /// configuration the paper's gates require.
    pub fn effective_perpendicular_field(&self) -> f64 {
        if self.ms == 0.0 {
            return 0.0;
        }
        2.0 * self.ku1 / (MU0 * self.ms) - self.ms
    }

    /// Whether a thin film of this material is stable with out-of-plane
    /// magnetization (Ku beats shape anisotropy).
    pub fn is_perpendicular_film(&self) -> bool {
        self.effective_perpendicular_field() > 0.0
    }
}

/// Builder for [`Material`] (see [`Material::builder`]).
#[derive(Debug, Clone)]
pub struct MaterialBuilder {
    ms: f64,
    aex: f64,
    alpha: f64,
    ku1: f64,
    anisotropy_axis: Vec3,
    gamma: f64,
}

impl Default for MaterialBuilder {
    fn default() -> Self {
        MaterialBuilder {
            ms: 0.0,
            aex: 0.0,
            alpha: 0.0,
            ku1: 0.0,
            anisotropy_axis: Vec3::Z,
            gamma: GAMMA,
        }
    }
}

impl MaterialBuilder {
    /// Sets Ms in A/m (must be ≥ 0 and finite).
    pub fn saturation_magnetization(mut self, ms: f64) -> Self {
        self.ms = ms;
        self
    }

    /// Sets Aex in J/m (must be ≥ 0 and finite).
    pub fn exchange_stiffness(mut self, aex: f64) -> Self {
        self.aex = aex;
        self
    }

    /// Sets the Gilbert damping α (must be ≥ 0 and finite).
    pub fn gilbert_damping(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets first-order uniaxial anisotropy Ku₁ (J/m³) along `axis`.
    pub fn uniaxial_anisotropy(mut self, ku1: f64, axis: Vec3) -> Self {
        self.ku1 = ku1;
        self.anisotropy_axis = axis;
        self
    }

    /// Overrides the gyromagnetic ratio (rad/(s·T), must be > 0).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Validates and produces the [`Material`].
    ///
    /// # Errors
    ///
    /// Returns [`MagnumError::InvalidMaterial`] if any parameter is
    /// non-finite, Ms/Aex/α are negative, γ is not positive, or the
    /// anisotropy axis is zero while Ku₁ is non-zero.
    pub fn build(self) -> Result<Material, MagnumError> {
        fn check(parameter: &'static str, value: f64, nonneg: bool) -> Result<(), MagnumError> {
            if !value.is_finite() {
                return Err(MagnumError::InvalidMaterial {
                    parameter,
                    reason: format!("must be finite, got {value}"),
                });
            }
            if nonneg && value < 0.0 {
                return Err(MagnumError::InvalidMaterial {
                    parameter,
                    reason: format!("must be non-negative, got {value}"),
                });
            }
            Ok(())
        }
        check("saturation_magnetization", self.ms, true)?;
        check("exchange_stiffness", self.aex, true)?;
        check("gilbert_damping", self.alpha, true)?;
        check("anisotropy_constant", self.ku1, false)?;
        check("gamma", self.gamma, true)?;
        if self.gamma <= 0.0 {
            return Err(MagnumError::InvalidMaterial {
                parameter: "gamma",
                reason: format!("must be positive, got {}", self.gamma),
            });
        }
        let axis = self.anisotropy_axis.normalized();
        if self.ku1 != 0.0 && axis == Vec3::ZERO {
            return Err(MagnumError::InvalidMaterial {
                parameter: "anisotropy_axis",
                reason: "must be non-zero when Ku1 is non-zero".into(),
            });
        }
        Ok(Material {
            ms: self.ms,
            aex: self.aex,
            alpha: self.alpha,
            ku1: self.ku1,
            anisotropy_axis: axis,
            gamma: self.gamma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fecob_preset_matches_paper() {
        let m = Material::fecob();
        assert_eq!(m.saturation_magnetization(), 1100e3);
        assert_eq!(m.exchange_stiffness(), 18.5e-12);
        assert_eq!(m.gilbert_damping(), 0.004);
        assert_eq!(m.anisotropy_constant(), 0.832e6);
        assert_eq!(m.anisotropy_axis(), Vec3::Z);
    }

    #[test]
    fn fecob_film_is_perpendicular() {
        // Ku = 0.832 MJ/m³ > μ₀Ms²/2 ≈ 0.76 MJ/m³ — the paper's film is
        // out-of-plane magnetized, which is what enables FVMSWs.
        let m = Material::fecob();
        assert!(m.is_perpendicular_film());
        assert!(m.effective_perpendicular_field() > 0.0);
        // But not by much: the margin is ~10% of Ms.
        assert!(m.effective_perpendicular_field() < 0.2 * m.saturation_magnetization());
    }

    #[test]
    fn exchange_length_is_nanometric_for_fecob() {
        let l = Material::fecob().exchange_length();
        assert!(
            l > 3e-9 && l < 8e-9,
            "exchange length {l} out of expected range"
        );
    }

    #[test]
    fn builder_rejects_negative_ms() {
        let err = Material::builder().saturation_magnetization(-1.0).build();
        assert!(matches!(
            err,
            Err(MagnumError::InvalidMaterial {
                parameter: "saturation_magnetization",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_nan_damping() {
        assert!(Material::builder()
            .gilbert_damping(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_zero_axis_with_anisotropy() {
        let err = Material::builder()
            .saturation_magnetization(1e6)
            .uniaxial_anisotropy(1e5, Vec3::ZERO)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_normalizes_axis() {
        let m = Material::builder()
            .saturation_magnetization(1e6)
            .uniaxial_anisotropy(1e5, Vec3::new(0.0, 0.0, 2.0))
            .build()
            .unwrap();
        assert!((m.anisotropy_axis().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn builder_rejects_nonpositive_gamma() {
        assert!(Material::builder().gamma(0.0).build().is_err());
        assert!(Material::builder().gamma(-1.0).build().is_err());
    }

    #[test]
    fn zero_ms_material_has_infinite_exchange_length() {
        let m = Material::builder()
            .exchange_stiffness(1e-12)
            .build()
            .unwrap();
        assert!(m.exchange_length().is_infinite());
        assert_eq!(m.effective_perpendicular_field(), 0.0);
    }

    #[test]
    fn in_plane_film_detected() {
        // Permalloy-like: no Ku, strong Ms -> in-plane.
        let m = Material::builder()
            .saturation_magnetization(800e3)
            .exchange_stiffness(13e-12)
            .build()
            .unwrap();
        assert!(!m.is_perpendicular_film());
    }
}
