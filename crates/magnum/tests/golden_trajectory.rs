//! Batched-vs-independent golden-trajectory tests.
//!
//! The batched backend promises that advancing K systems in lockstep is
//! purely a throughput optimization: every member's trajectory must be
//! bitwise identical to the same simulation stepped on its own, at every
//! thread count, with and without thermal noise, and under the
//! FFT-accelerated demag. These tests drive the paper's triangle gate
//! shape (and small synthetic films) through both paths and compare
//! `f64` bit patterns.

use magnum::field::demag::DemagMethod;
use magnum::geometry::Polygon;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;

const NX: usize = 48;
const NY: usize = 24;
const CELL: f64 = 5e-9;

/// The paper's triangle-gate film with a left-edge antenna, one of K
/// phase variants. `threads` is forced past the small-grid serial clamp
/// so the parallel sweeps really run.
fn gate_sim(phase: f64, threads: usize, kind: IntegratorKind, demag: DemagMethod) -> Simulation {
    let mut mesh = Mesh::new(NX, NY, [CELL, CELL, 1e-9]).unwrap();
    let w = NX as f64 * CELL;
    let h = NY as f64 * CELL;
    let triangle = Polygon::new(vec![(0.0, 0.0), (0.0, h), (w, h / 2.0)]);
    magnum::geometry::rasterize(&mut mesh, &triangle);
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * CELL,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, phase),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(demag)
        .absorbing_frame(AbsorbingFrame::new(3, 0.5))
        .antenna(antenna)
        .integrator(kind)
        .threads(threads)
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

/// Steps each sim independently, then the same K sims as one batch, and
/// asserts every member's final magnetization matches bit for bit.
fn assert_batch_matches_independent(
    build: &dyn Fn(usize) -> Simulation,
    k: usize,
    threads: usize,
    steps: usize,
    label: &str,
) {
    let independent: Vec<Vec<Vec3>> = (0..k)
        .map(|s| {
            let mut sim = build(s);
            for _ in 0..steps {
                sim.step().unwrap();
            }
            sim.magnetization().to_vec()
        })
        .collect();
    let sims: Vec<Simulation> = (0..k).map(build).collect();
    let mut batch = BatchedSimulation::new(sims).unwrap();
    for _ in 0..steps {
        batch.step().unwrap();
    }
    for (s, serial) in independent.iter().enumerate() {
        let view = batch.member(s);
        for (i, want) in serial.iter().enumerate() {
            let got = MagRead::at(&view, i);
            assert_eq!(
                [got.x.to_bits(), got.y.to_bits(), got.z.to_bits()],
                [want.x.to_bits(), want.y.to_bits(), want.z.to_bits()],
                "{label}: member {s} cell {i} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn rk4_gate_batch_is_bitwise_identical_across_thread_counts() {
    for threads in [1, 2, 4] {
        let build = move |s: usize| {
            gate_sim(
                s as f64 * 0.37,
                threads,
                IntegratorKind::RungeKutta4,
                DemagMethod::ThinFilmLocal,
            )
        };
        assert_batch_matches_independent(&build, 4, threads, 20, "rk4 gate");
    }
}

#[test]
fn heun_gate_batch_is_bitwise_identical_across_thread_counts() {
    for threads in [1, 2, 4] {
        let build = move |s: usize| {
            gate_sim(
                s as f64 * 0.37,
                threads,
                IntegratorKind::Heun,
                DemagMethod::ThinFilmLocal,
            )
        };
        assert_batch_matches_independent(&build, 4, threads, 20, "heun gate");
    }
}

#[test]
fn newell_fft_gate_batch_is_bitwise_identical() {
    // The batched Newell demag shares one FFT plan — and one scratch
    // arena (padded planes + per-thread row scratch) — across all K = 4
    // members riding the parallel spectral pipeline; each member's stray
    // field must still match its solo run exactly, serial and parallel.
    for threads in [1, 4] {
        let build = move |s: usize| {
            gate_sim(
                s as f64 * 0.37,
                threads,
                IntegratorKind::RungeKutta4,
                DemagMethod::NewellFft,
            )
        };
        assert_batch_matches_independent(&build, 4, threads, 10, "newell-fft gate");
    }
}

#[test]
fn thermal_heun_batch_is_bitwise_identical_across_thread_counts() {
    // T > 0: each member owns an isolated RNG stream keyed by its seed,
    // so batching K thermal runs must reproduce each solo trajectory —
    // the draws cannot bleed across members or depend on K.
    for threads in [1, 2, 4] {
        let build = move |s: usize| {
            let mesh = Mesh::new(16, 8, [CELL, CELL, 1e-9]).unwrap();
            Simulation::builder(mesh, Material::fecob())
                .uniform_magnetization(Vec3::Z)
                .temperature(300.0)
                .seed(17 + s as u64)
                .integrator(IntegratorKind::Heun)
                .threads(threads)
                .min_cells_per_thread(0)
                .build()
                .unwrap()
        };
        assert_batch_matches_independent(&build, 4, threads, 20, "thermal heun");
    }
}

#[test]
fn into_members_returns_synced_simulations() {
    // After a batched run, `into_members` hands back Simulations whose
    // state continues exactly where the batch left off.
    let build = |s: usize| {
        gate_sim(
            s as f64 * 0.37,
            1,
            IntegratorKind::RungeKutta4,
            DemagMethod::ThinFilmLocal,
        )
    };
    let mut solo = build(1);
    for _ in 0..12 {
        solo.step().unwrap();
    }
    let sims: Vec<Simulation> = (0..2).map(build).collect();
    let mut batch = BatchedSimulation::new(sims).unwrap();
    for _ in 0..8 {
        batch.step().unwrap();
    }
    let mut members = batch.into_members();
    let m1 = &mut members[1];
    for _ in 0..4 {
        m1.step().unwrap();
    }
    assert_eq!(solo.magnetization().to_vec(), m1.magnetization().to_vec());
}
