//! Parallel-vs-serial bitwise-equality tests.
//!
//! The magnum threading model promises that the thread count is purely a
//! performance knob: every trajectory must be bitwise identical whether
//! it runs on one thread or many. These tests drive a masked triangle
//! geometry (the paper's gate shape) with an antenna and an absorbing
//! frame through all three integrators and compare `f64` bit patterns.

use magnum::field::demag::DemagMethod;
use magnum::geometry::Polygon;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;

const NX: usize = 48;
const NY: usize = 24;
const CELL: f64 = 5e-9;

/// A triangle-shaped film (apex to the right, like the paper's gates)
/// with an antenna on the left edge and an absorbing frame.
fn triangle_sim(threads: usize, kind: IntegratorKind) -> Simulation {
    triangle_sim_with_demag(threads, kind, DemagMethod::ThinFilmLocal)
}

fn triangle_sim_with_demag(threads: usize, kind: IntegratorKind, demag: DemagMethod) -> Simulation {
    let mut mesh = Mesh::new(NX, NY, [CELL, CELL, 1e-9]).unwrap();
    let w = NX as f64 * CELL;
    let h = NY as f64 * CELL;
    let triangle = Polygon::new(vec![(0.0, 0.0), (0.0, h), (w, h / 2.0)]);
    magnum::geometry::rasterize(&mut mesh, &triangle);
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * CELL,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, 0.0),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(demag)
        .absorbing_frame(AbsorbingFrame::new(3, 0.5))
        .antenna(antenna)
        .integrator(kind)
        .threads(threads)
        // Disable the small-grid serial clamp: these tests exist to prove
        // the parallel sweeps match serial bit for bit, so they must
        // actually run parallel on this sub-threshold grid.
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

fn run_and_collect(threads: usize, kind: IntegratorKind, steps: usize) -> Vec<Vec3> {
    let mut sim = triangle_sim(threads, kind);
    for _ in 0..steps {
        sim.step().unwrap();
    }
    sim.magnetization().to_vec()
}

fn assert_bitwise_equal(kind: IntegratorKind, steps: usize) {
    let serial = run_and_collect(1, kind, steps);
    for threads in [2, 4, 7] {
        let parallel = run_and_collect(threads, kind, steps);
        assert_eq!(
            serial, parallel,
            "{kind:?} trajectory diverged at {threads} threads"
        );
    }
}

#[test]
fn heun_is_bitwise_identical_across_thread_counts() {
    assert_bitwise_equal(IntegratorKind::Heun, 25);
}

#[test]
fn rk4_is_bitwise_identical_across_thread_counts() {
    assert_bitwise_equal(IntegratorKind::RungeKutta4, 25);
}

#[test]
fn cash_karp_is_bitwise_identical_across_thread_counts() {
    // Adaptive stepping exercises the error-estimate reduction: the
    // f64::max fold must make step-size control thread-count-independent.
    assert_bitwise_equal(IntegratorKind::CashKarp45 { tolerance: 1e-7 }, 25);
}

#[test]
fn newell_fft_demag_is_bitwise_identical_across_thread_counts() {
    // The FFT-accelerated Newell demag parallelizes kernel construction,
    // the 2-D transforms, and the spectral multiply; every stage promises
    // block-ordered determinism, so whole trajectories must match bit for
    // bit at 1, 2, 4, and 7 threads.
    let run = |threads: usize| {
        let mut sim =
            triangle_sim_with_demag(threads, IntegratorKind::RungeKutta4, DemagMethod::NewellFft);
        for _ in 0..15 {
            sim.step().unwrap();
        }
        sim.magnetization().to_vec()
    };
    let serial = run(1);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            run(threads),
            "NewellFft trajectory diverged at {threads} threads"
        );
    }
}

#[test]
fn composite_padded_demag_is_bitwise_identical_across_thread_counts() {
    // A 20×13 film pads to a 40×25 transform under the good-size planner:
    // radix-4/-2/-5 stages on x and a pure radix-5 odd length on y. The
    // mixed-radix engine must keep the same determinism contract as the
    // old radix-2 path — identical trajectories at any thread count.
    let run = |threads: usize| {
        let mesh = Mesh::new(20, 13, [CELL, CELL, 1e-9]).unwrap();
        let antenna = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            2.0 * CELL,
            13.0 * CELL,
            Vec3::X,
            Drive::logic_cw(3e3, 9e9, 0.0),
        );
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::Z)
            .demag(DemagMethod::NewellFft)
            .antenna(antenna)
            .integrator(IntegratorKind::RungeKutta4)
            .threads(threads)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        for _ in 0..15 {
            sim.step().unwrap();
        }
        sim.magnetization().to_vec()
    };
    let serial = run(1);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            run(threads),
            "composite-padded trajectory diverged at {threads} threads"
        );
    }
}

#[test]
fn bluestein_padded_demag_is_bitwise_identical_across_thread_counts() {
    // PadPolicy::Exact pads 19×12 to a 37×23 transform — both prime, so
    // every row and column FFT runs through the Bluestein chirp-z
    // fallback, convolving through the per-thread scratch arena. The
    // fallback must honour the same determinism contract as the native
    // stages: identical trajectories at 1, 2, 4, and 7 threads.
    use magnum::field::demag::PadPolicy;
    let run = |threads: usize| {
        let mesh = Mesh::new(19, 12, [CELL, CELL, 1e-9]).unwrap();
        let antenna = Antenna::over_rect(
            &mesh,
            0.0,
            0.0,
            2.0 * CELL,
            12.0 * CELL,
            Vec3::X,
            Drive::logic_cw(3e3, 9e9, 0.0),
        );
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::Z)
            .demag(DemagMethod::NewellFft)
            .demag_padding(PadPolicy::Exact)
            .antenna(antenna)
            .integrator(IntegratorKind::RungeKutta4)
            .threads(threads)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        for _ in 0..15 {
            sim.step().unwrap();
        }
        sim.magnetization().to_vec()
    };
    let serial = run(1);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            run(threads),
            "Bluestein-padded trajectory diverged at {threads} threads"
        );
    }
}

#[test]
fn thermal_heun_is_bitwise_identical_across_thread_counts() {
    // The thermal field is drawn serially once per step, so even T > 0
    // trajectories are bitwise reproducible under threading.
    let run = |threads: usize| {
        let mesh = Mesh::new(16, 8, [CELL, CELL, 1e-9]).unwrap();
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::Z)
            .temperature(300.0)
            .seed(17)
            .threads(threads)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        sim.magnetization().to_vec()
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "thermal trajectory diverged at 4 threads");
}

#[test]
fn relax_is_bitwise_identical_across_thread_counts() {
    // Start tilted off the easy axis so the torque is nonzero and relax
    // actually steps.
    let relax = |threads: usize| {
        let mesh = Mesh::new(24, 12, [CELL, CELL, 1e-9]).unwrap();
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(Vec3::new(0.4, 0.1, 1.0))
            .demag(DemagMethod::ThinFilmLocal)
            .threads(threads)
            .min_cells_per_thread(0)
            .build()
            .unwrap();
        let report = sim.relax(1e-30, 15).unwrap();
        assert_eq!(report.steps, 15);
        sim.magnetization().to_vec()
    };
    assert_eq!(relax(1), relax(4));
}
