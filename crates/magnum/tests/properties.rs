//! Property-based tests for the solver substrate.

use proptest::prelude::*;

use magnum::fft::{fft_in_place, Direction};
use magnum::material::Material;
use magnum::math::{Complex64, Vec3};
use magnum::mesh::Mesh;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_filter_map(
        "non-degenerate direction",
        |(x, y, z)| {
            let v = Vec3::new(x, y, z);
            if v.norm() > 1e-3 {
                Some(v.normalized())
            } else {
                None
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every integrator keeps |m| = 1 on every magnetic cell from any
    /// uniform starting direction.
    #[test]
    fn integrators_preserve_the_unit_sphere(
        direction in unit_vec3(),
        kind in prop_oneof![
            Just(IntegratorKind::Heun),
            Just(IntegratorKind::RungeKutta4),
            Just(IntegratorKind::CashKarp45 { tolerance: 1e-7 }),
        ],
    ) {
        let mesh = Mesh::new(8, 4, [5e-9, 5e-9, 1e-9]).expect("mesh");
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(direction)
            .integrator(kind)
            .build()
            .expect("build");
        sim.run(2e-12).expect("run");
        for (v, &magnetic) in sim.magnetization().iter().zip(sim.mesh().mask()) {
            if magnetic {
                prop_assert!((v.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Damped relaxation never increases the total energy, whatever the
    /// starting direction.
    #[test]
    fn relaxation_energy_is_non_increasing(direction in unit_vec3()) {
        let mesh = Mesh::new(8, 4, [5e-9, 5e-9, 1e-9]).expect("mesh");
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .uniform_magnetization(direction)
            .build()
            .expect("build");
        let mut last = sim.total_energy();
        for _ in 0..5 {
            sim.run(2e-12).expect("run");
            let e = sim.total_energy();
            prop_assert!(e <= last + last.abs() * 1e-9, "{last} -> {e}");
            last = e;
        }
    }

    /// FFT round-trips arbitrary signals (any power-of-two length).
    #[test]
    fn fft_round_trips(
        exp in 1u32..9,
        seed in 0u64..1000,
    ) {
        let n = 1usize << exp;
        let original: Vec<Complex64> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                Complex64::new((x * 1e-3).sin(), (x * 7e-4).cos())
            })
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data, Direction::Forward);
        fft_in_place(&mut data, Direction::Inverse);
        for (a, b) in data.iter().zip(original.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Rasterizing any rectangle covers exactly the cells whose centres
    /// are inside it.
    #[test]
    fn rasterized_rect_count_matches_prediction(
        x0 in 0.0f64..40e-9,
        w in 5e-9f64..60e-9,
        y0 in 0.0f64..20e-9,
        h in 5e-9f64..30e-9,
    ) {
        use magnum::geometry::{rasterize, Rect};
        let cell = 5e-9;
        let mut mesh = Mesh::new(24, 12, [cell, cell, 1e-9]).expect("mesh");
        rasterize(&mut mesh, &Rect::new(x0, y0, x0 + w, y0 + h));
        let mut expected = 0;
        for iy in 0..12 {
            for ix in 0..24 {
                let (cx, cy) = mesh.cell_center(ix, iy);
                if cx >= x0 && cx <= x0 + w && cy >= y0 && cy <= y0 + h {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(mesh.magnetic_cell_count(), expected);
    }

    /// The drive waveform is bounded by its amplitude at all times.
    #[test]
    fn drive_is_bounded(
        amplitude in 0.0f64..1e5,
        frequency in 1e9f64..50e9,
        phase in 0.0f64..std::f64::consts::TAU,
        t in 0.0f64..5e-9,
    ) {
        let d = Drive::logic_cw(amplitude, frequency, phase);
        prop_assert!(d.value(t).abs() <= amplitude * (1.0 + 1e-12));
    }

    /// Thermal field variance is deterministic per seed and zero at T=0.
    #[test]
    fn thermal_field_is_seeded(seed in 0u64..100) {
        let mesh = Mesh::new(8, 8, [5e-9, 5e-9, 1e-9]).expect("mesh");
        let mat = Material::fecob();
        let mut a = ThermalField::new(&mesh, &mat, 77.0, seed);
        let mut b = ThermalField::new(&mesh, &mat, 77.0, seed);
        let mut ba = vec![Vec3::ZERO; mesh.cell_count()];
        let mut bb = vec![Vec3::ZERO; mesh.cell_count()];
        a.draw(1e-13, &mut ba);
        b.draw(1e-13, &mut bb);
        prop_assert_eq!(ba, bb);
    }
}
