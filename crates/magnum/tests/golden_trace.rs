//! Golden-trajectory parity tests.
//!
//! The reference traces under `tests/data/` were recorded from the
//! pre-SoA integrator path (array-of-structs state, separate stage
//! passes) by running
//!
//! ```text
//! MAGNUM_GOLDEN_WRITE=1 cargo test -p magnum --test golden_trace
//! ```
//!
//! against that code. Each test re-runs the same scenario at 1, 2, 4,
//! and 7 threads and requires every recorded magnetization component to
//! match the reference within 1e-12 relative error — and all thread
//! counts to agree bitwise among themselves. Together these pin the
//! fused single-sweep SoA hot path to the trajectory of the original
//! implementation.

use magnum::field::demag::DemagMethod;
use magnum::geometry::Polygon;
use magnum::prelude::*;
use magnum::solver::IntegratorKind;
use std::fmt::Write as _;
use std::path::PathBuf;

const NX: usize = 48;
const NY: usize = 24;
const CELL: f64 = 5e-9;
const PROBES: usize = 16;
const REL_TOL: f64 = 1e-12;

/// The triangle gate geometry from the parallel suite: antenna on the
/// left edge, absorbing frame, apex to the right.
fn triangle_sim(threads: usize, kind: IntegratorKind) -> Simulation {
    let mut mesh = Mesh::new(NX, NY, [CELL, CELL, 1e-9]).unwrap();
    let w = NX as f64 * CELL;
    let h = NY as f64 * CELL;
    let triangle = Polygon::new(vec![(0.0, 0.0), (0.0, h), (w, h / 2.0)]);
    magnum::geometry::rasterize(&mut mesh, &triangle);
    let antenna = Antenna::over_rect(
        &mesh,
        0.0,
        0.0,
        2.0 * CELL,
        h,
        Vec3::X,
        Drive::logic_cw(3e3, 9e9, 0.0),
    );
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .demag(DemagMethod::ThinFilmLocal)
        .absorbing_frame(AbsorbingFrame::new(3, 0.5))
        .antenna(antenna)
        .integrator(kind)
        .threads(threads)
        // The grid is far below the small-grid serial clamp; disable it so
        // the parity runs genuinely exercise the parallel sweeps.
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

/// A small thermal film: T > 0 exercises the frozen-per-step stochastic
/// field inside the fused sweep.
fn thermal_sim(threads: usize) -> Simulation {
    let mesh = Mesh::new(16, 8, [CELL, CELL, 1e-9]).unwrap();
    Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::Z)
        .temperature(300.0)
        .seed(17)
        .threads(threads)
        .min_cells_per_thread(0)
        .build()
        .unwrap()
}

/// Evenly spaced magnetic cells to probe.
fn probe_cells(sim: &Simulation) -> Vec<usize> {
    let magnetic: Vec<usize> = sim
        .mesh()
        .mask()
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| i)
        .collect();
    (0..PROBES)
        .map(|k| magnetic[k * magnetic.len() / PROBES])
        .collect()
}

/// Runs `steps` steps, recording the probed components (and the clock)
/// every `every` steps as hex f64 bit patterns, one value per line:
/// `label step cell component bits`.
fn record_trace(mut sim: Simulation, steps: usize, every: usize) -> String {
    let cells = probe_cells(&sim);
    let mut out = String::new();
    for step in 1..=steps {
        sim.step().unwrap();
        if step % every != 0 {
            continue;
        }
        writeln!(out, "t {} 0 0 {:016x}", step, sim.time().to_bits()).unwrap();
        let m = sim.magnetization().to_vec();
        for &cell in &cells {
            let v = m[cell];
            for (c, val) in [(0, v.x), (1, v.y), (2, v.z)] {
                writeln!(out, "m {} {} {} {:016x}", step, cell, c, val.to_bits()).unwrap();
            }
        }
    }
    out
}

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("golden_{name}.txt"))
}

fn parse_values(trace: &str) -> Vec<(String, f64)> {
    trace
        .lines()
        .map(|line| {
            let (key, bits) = line.rsplit_once(' ').expect("malformed trace line");
            let bits = u64::from_str_radix(bits, 16).expect("malformed bit pattern");
            (key.to_string(), f64::from_bits(bits))
        })
        .collect()
}

fn check_against_reference(name: &str, trace: &str) {
    let path = data_path(name);
    if std::env::var("MAGNUM_GOLDEN_WRITE").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, trace).unwrap();
        return;
    }
    let reference = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden trace {}: {e}", path.display()));
    let got = parse_values(trace);
    let want = parse_values(&reference);
    assert_eq!(got.len(), want.len(), "{name}: trace length changed");
    for ((gk, gv), (wk, wv)) in got.iter().zip(&want) {
        assert_eq!(gk, wk, "{name}: trace keys diverged");
        let tol = REL_TOL * wv.abs().max(1.0);
        assert!(
            (gv - wv).abs() <= tol,
            "{name}: {gk} drifted: got {gv:e}, reference {wv:e}"
        );
    }
}

fn golden(name: &str, run: impl Fn(usize) -> String) {
    let serial = run(1);
    check_against_reference(name, &serial);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            run(threads),
            "{name}: trace diverged at {threads} threads"
        );
    }
}

#[test]
fn heun_matches_golden_trace() {
    golden("heun", |threads| {
        record_trace(triangle_sim(threads, IntegratorKind::Heun), 25, 5)
    });
}

#[test]
fn rk4_matches_golden_trace() {
    golden("rk4", |threads| {
        record_trace(triangle_sim(threads, IntegratorKind::RungeKutta4), 25, 5)
    });
}

#[test]
fn cash_karp_matches_golden_trace() {
    // The recorded clock pins the adaptive step-size control path too.
    golden("cash_karp", |threads| {
        record_trace(
            triangle_sim(threads, IntegratorKind::CashKarp45 { tolerance: 1e-7 }),
            25,
            5,
        )
    });
}

#[test]
fn thermal_heun_matches_golden_trace() {
    golden("thermal_heun", |threads| {
        record_trace(thermal_sim(threads), 20, 5)
    });
}
