//! Property-based tests for the analytic spin-wave physics.

use proptest::prelude::*;

use swphys::attenuation::Attenuation;
use swphys::dispersion::FvmswDispersion;
use swphys::film::PerpendicularFilm;
use swphys::waveguide::{EdgePinning, WaveguideDispersion};

fn paper_film() -> PerpendicularFilm {
    PerpendicularFilm::fecob(1e-9)
}

proptest! {
    /// The FVMSW dispersion is monotonically increasing in |k|.
    #[test]
    fn dispersion_is_monotone(k1 in 1e5f64..5e8, k2 in 1e5f64..5e8) {
        let disp = FvmswDispersion::for_film(&paper_film());
        let (lo, hi) = if k1 < k2 { (k1, k2) } else { (k2, k1) };
        prop_assume!(hi - lo > 1.0);
        prop_assert!(disp.omega(hi) > disp.omega(lo));
    }

    /// The wavenumber solver inverts the dispersion for any in-band k.
    #[test]
    fn wavenumber_solver_inverts(k in 1e6f64..4e8) {
        let disp = FvmswDispersion::for_film(&paper_film());
        let f = disp.frequency(k);
        let solved = disp.wavenumber_for_frequency(f, 0.0, 5e8).expect("in band");
        prop_assert!((solved - k).abs() / k < 1e-6);
    }

    /// Group velocity is non-negative everywhere in band.
    #[test]
    fn group_velocity_is_non_negative(k in 1e6f64..4e8) {
        let disp = FvmswDispersion::for_film(&paper_film());
        prop_assert!(disp.group_velocity(k) >= 0.0);
    }

    /// Attenuation lifetime decreases with damping and frequency.
    #[test]
    fn lifetime_decreases_with_damping(
        k in 1e7f64..3e8,
        a1 in 1e-4f64..0.05,
        a2 in 1e-4f64..0.05,
    ) {
        let disp = FvmswDispersion::for_film(&paper_film());
        let (lo, hi) = if a1 < a2 { (a1, a2) } else { (a2, a1) };
        prop_assume!(hi / lo > 1.001);
        let t_lo = Attenuation::for_mode(&disp, k, lo).lifetime();
        let t_hi = Attenuation::for_mode(&disp, k, hi).lifetime();
        prop_assert!(t_hi < t_lo);
    }

    /// Amplitude after propagation is always in (0, 1].
    #[test]
    fn decay_fraction_is_physical(k in 1e7f64..3e8, d in 0.0f64..1e-5) {
        let disp = FvmswDispersion::for_film(&paper_film());
        let att = Attenuation::for_mode(&disp, k, 0.004);
        let a = att.amplitude_after(d);
        prop_assert!(a > 0.0 && a <= 1.0);
    }

    /// Waveguide mode cut-offs increase with the mode index for any
    /// physical width.
    #[test]
    fn waveguide_cutoffs_are_ordered(width in 20e-9f64..200e-9) {
        let disp = FvmswDispersion::for_film(&paper_film());
        let wg = WaveguideDispersion::new(disp, width, EdgePinning::Pinned).expect("valid");
        prop_assert!(wg.cutoff_frequency(1) < wg.cutoff_frequency(2));
        prop_assert!(wg.cutoff_frequency(2) < wg.cutoff_frequency(3));
    }

    /// Narrower guides have higher fundamental cut-offs.
    #[test]
    fn narrower_guides_cut_off_higher(w1 in 20e-9f64..200e-9, w2 in 20e-9f64..200e-9) {
        prop_assume!((w1 - w2).abs() > 1e-9);
        let disp = FvmswDispersion::for_film(&paper_film());
        let (narrow, wide) = if w1 < w2 { (w1, w2) } else { (w2, w1) };
        let n = WaveguideDispersion::new(disp, narrow, EdgePinning::Pinned).expect("valid");
        let w = WaveguideDispersion::new(disp, wide, EdgePinning::Pinned).expect("valid");
        prop_assert!(n.cutoff_frequency(1) > w.cutoff_frequency(1));
    }

    /// A biased film has a higher band bottom (ω₀ grows with H_ext).
    #[test]
    fn bias_raises_the_band(h in 0.0f64..5e5) {
        let base = paper_film();
        let biased = PerpendicularFilm::new(
            base.ms(), base.aex(), base.alpha(), 0.832e6, 1e-9, h,
        );
        let d0 = FvmswDispersion::for_film(&base);
        let db = FvmswDispersion::for_film(&biased);
        prop_assert!(db.omega(0.0) >= d0.omega(0.0));
    }
}
