//! Spin-wave lifetime and propagation decay.
//!
//! Gilbert damping gives a spin wave a finite lifetime `τ ≈ 1/(α·ω·η)`
//! (with `η = ∂ω/∂ω₀` the ellipticity factor, ≈ 1 for forward-volume
//! waves) and therefore a propagation decay length `L_att = v_g·τ`.
//! The paper's performance model assumes propagation loss is negligible
//! against transducer loss (§IV-D assumption (iv)); this module is what
//! lets the repro *check* that assumption for the gate dimensions.

use crate::dispersion::FvmswDispersion;

/// Amplitude decay model `A(d) = A₀·e^{−d/L_att}` for a propagating wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attenuation {
    lifetime: f64,
    decay_length: f64,
}

impl Attenuation {
    /// Computes lifetime and decay length for a wave at wavenumber `k`
    /// on the given dispersion with Gilbert damping `alpha`.
    pub fn for_mode(dispersion: &FvmswDispersion, k: f64, alpha: f64) -> Self {
        let omega = dispersion.omega(k);
        let vg = dispersion.group_velocity(k);
        let lifetime = if alpha > 0.0 && omega > 0.0 {
            1.0 / (alpha * omega)
        } else {
            f64::INFINITY
        };
        Attenuation {
            lifetime,
            decay_length: vg * lifetime,
        }
    }

    /// Builds a model directly from a lifetime (s) and group velocity (m/s).
    pub fn from_lifetime(lifetime: f64, group_velocity: f64) -> Self {
        Attenuation {
            lifetime,
            decay_length: group_velocity * lifetime,
        }
    }

    /// Exponential lifetime τ in seconds.
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Amplitude decay length `L_att` in metres.
    pub fn decay_length(&self) -> f64 {
        self.decay_length
    }

    /// Relative amplitude remaining after propagating `distance` metres.
    pub fn amplitude_after(&self, distance: f64) -> f64 {
        if self.decay_length.is_infinite() {
            return 1.0;
        }
        (-distance / self.decay_length).exp()
    }

    /// Relative *energy* (amplitude squared) after `distance` metres.
    pub fn energy_after(&self, distance: f64) -> f64 {
        let a = self.amplitude_after(distance);
        a * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::film::PerpendicularFilm;

    fn paper_mode() -> Attenuation {
        let film = PerpendicularFilm::fecob(1e-9);
        let disp = FvmswDispersion::for_film(&film);
        let k = 2.0 * std::f64::consts::PI / 55e-9;
        Attenuation::for_mode(&disp, k, film.alpha())
    }

    #[test]
    fn lifetime_is_nanosecond_scale_for_low_damping() {
        let att = paper_mode();
        assert!(
            att.lifetime() > 0.5e-9 && att.lifetime() < 10e-9,
            "τ = {} s",
            att.lifetime()
        );
    }

    #[test]
    fn decay_length_supports_the_papers_loss_assumption() {
        // §IV-D (iv): propagation loss negligible. The gate path is
        // ~1-2 µm; the decay length must be comparable or larger for the
        // assumption to be defensible.
        let att = paper_mode();
        assert!(
            att.decay_length() > 0.5e-6,
            "L_att = {} m is too short for the paper's assumption",
            att.decay_length()
        );
    }

    #[test]
    fn amplitude_decays_exponentially() {
        let att = Attenuation::from_lifetime(1e-9, 1000.0);
        let l = att.decay_length();
        assert!((att.amplitude_after(l) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((att.amplitude_after(0.0) - 1.0).abs() < 1e-15);
        assert!(att.amplitude_after(10.0 * l) < 1e-4);
    }

    #[test]
    fn energy_is_amplitude_squared() {
        let att = Attenuation::from_lifetime(1e-9, 1000.0);
        let d = 0.7 * att.decay_length();
        assert!((att.energy_after(d) - att.amplitude_after(d).powi(2)).abs() < 1e-15);
    }

    #[test]
    fn zero_damping_never_decays() {
        let film = PerpendicularFilm::new(1100e3, 18.5e-12, 0.0, 0.832e6, 1e-9, 0.0);
        let disp = FvmswDispersion::for_film(&film);
        let att = Attenuation::for_mode(&disp, 1e8, film.alpha());
        assert!(att.lifetime().is_infinite());
        assert_eq!(att.amplitude_after(1.0), 1.0);
    }

    #[test]
    fn higher_damping_shortens_lifetime() {
        let disp = FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9));
        let low = Attenuation::for_mode(&disp, 1e8, 0.004);
        let high = Attenuation::for_mode(&disp, 1e8, 0.04);
        assert!((low.lifetime() / high.lifetime() - 10.0).abs() < 1e-6);
    }
}
