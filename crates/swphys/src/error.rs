//! Error type for `swphys`.

use std::error::Error;
use std::fmt;

/// Errors from analytic spin-wave computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SwPhysError {
    /// A root finder could not bracket or converge on a solution.
    SolveFailed {
        /// What was being solved for (e.g. `"wavenumber for frequency"`).
        what: &'static str,
        /// Human-readable detail.
        reason: String,
    },
    /// A physical parameter was outside its valid range.
    InvalidParameter {
        /// The parameter name.
        parameter: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for SwPhysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwPhysError::SolveFailed { what, reason } => {
                write!(f, "failed to solve for {what}: {reason}")
            }
            SwPhysError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
        }
    }
}

impl Error for SwPhysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SwPhysError::SolveFailed {
            what: "wavenumber for frequency",
            reason: "frequency below the band bottom".into(),
        };
        assert!(e.to_string().contains("wavenumber"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SwPhysError>();
    }
}
