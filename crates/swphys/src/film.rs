//! Out-of-plane magnetized thin films.
//!
//! The paper's gates need **forward-volume** spin waves, which exist only
//! when the static magnetization points out of the film plane. That
//! requires the perpendicular anisotropy field to beat the thin-film
//! demagnetizing field; the margin sets the internal field that anchors
//! the dispersion relation.

use crate::{GAMMA, MU0};

/// A perpendicular-anisotropy thin film and its static equilibrium.
///
/// ```
/// use swphys::film::PerpendicularFilm;
/// let film = PerpendicularFilm::fecob(1e-9);
/// assert!(film.is_stable());
/// assert!(film.internal_field() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerpendicularFilm {
    ms: f64,
    aex: f64,
    alpha: f64,
    ku1: f64,
    thickness: f64,
    external_field: f64,
    gamma: f64,
}

impl PerpendicularFilm {
    /// Creates a film from raw parameters: Ms (A/m), Aex (J/m), Gilbert α,
    /// Ku₁ (J/m³), thickness (m), and an out-of-plane bias field (A/m).
    pub fn new(
        ms: f64,
        aex: f64,
        alpha: f64,
        ku1: f64,
        thickness: f64,
        external_field: f64,
    ) -> Self {
        PerpendicularFilm {
            ms,
            aex,
            alpha,
            ku1,
            thickness,
            external_field,
            gamma: GAMMA,
        }
    }

    /// The paper's Fe₆₀Co₂₀B₂₀ film (§IV-A): Ms = 1100 kA/m,
    /// Aex = 18.5 pJ/m, α = 0.004, Ku = 0.832 MJ/m³, no bias field.
    pub fn fecob(thickness: f64) -> Self {
        PerpendicularFilm::new(1100e3, 18.5e-12, 0.004, 0.832e6, thickness, 0.0)
    }

    /// Saturation magnetization in A/m.
    pub fn ms(&self) -> f64 {
        self.ms
    }

    /// Exchange stiffness in J/m.
    pub fn aex(&self) -> f64 {
        self.aex
    }

    /// Gilbert damping constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Film thickness in metres.
    pub fn thickness(&self) -> f64 {
        self.thickness
    }

    /// Out-of-plane bias field in A/m.
    pub fn external_field(&self) -> f64 {
        self.external_field
    }

    /// Gyromagnetic ratio in rad/(s·T).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Perpendicular anisotropy field `2Ku₁/(μ₀Ms)` in A/m.
    pub fn anisotropy_field(&self) -> f64 {
        if self.ms == 0.0 {
            return 0.0;
        }
        2.0 * self.ku1 / (MU0 * self.ms)
    }

    /// Internal field for out-of-plane magnetization:
    /// `H_i = H_ext + H_anis − Ms` (the −Ms is the thin-film demag).
    pub fn internal_field(&self) -> f64 {
        self.external_field + self.anisotropy_field() - self.ms
    }

    /// Whether the out-of-plane state is stable (positive internal field).
    pub fn is_stable(&self) -> bool {
        self.internal_field() > 0.0
    }

    /// Exchange length constant `λ_ex² = 2A/(μ₀Ms²)` in m².
    pub fn exchange_length_sq(&self) -> f64 {
        if self.ms == 0.0 {
            return 0.0;
        }
        2.0 * self.aex / (MU0 * self.ms * self.ms)
    }

    /// Ferromagnetic-resonance (k = 0) angular frequency in rad/s.
    pub fn fmr_omega(&self) -> f64 {
        self.gamma * MU0 * self.internal_field()
    }

    /// FMR frequency in Hz.
    pub fn fmr_frequency(&self) -> f64 {
        self.fmr_omega() / (2.0 * std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fecob_is_perpendicular_with_small_margin() {
        let film = PerpendicularFilm::fecob(1e-9);
        assert!(film.is_stable());
        let hi = film.internal_field();
        // Anisotropy field ≈ 1.203 MA/m, Ms = 1.1 MA/m -> margin ≈ 103 kA/m.
        assert!(hi > 80e3 && hi < 130e3, "internal field {hi} out of range");
    }

    #[test]
    fn bias_field_adds_to_internal_field() {
        let base = PerpendicularFilm::fecob(1e-9);
        let biased =
            PerpendicularFilm::new(base.ms(), base.aex(), base.alpha(), 0.832e6, 1e-9, 50e3);
        assert!((biased.internal_field() - base.internal_field() - 50e3).abs() < 1e-6);
    }

    #[test]
    fn weak_anisotropy_film_is_unstable_out_of_plane() {
        let film = PerpendicularFilm::new(800e3, 13e-12, 0.01, 0.0, 1e-9, 0.0);
        assert!(!film.is_stable());
    }

    #[test]
    fn fmr_frequency_is_gigahertz_scale() {
        let f = PerpendicularFilm::fecob(1e-9).fmr_frequency();
        assert!(f > 1e9 && f < 10e9, "FMR = {f}");
    }

    #[test]
    fn exchange_length_matches_known_value() {
        let film = PerpendicularFilm::fecob(1e-9);
        let l = film.exchange_length_sq().sqrt();
        assert!(l > 3e-9 && l < 8e-9);
    }

    #[test]
    fn zero_ms_degenerates_gracefully() {
        let film = PerpendicularFilm::new(0.0, 1e-12, 0.01, 1e5, 1e-9, 0.0);
        assert_eq!(film.anisotropy_field(), 0.0);
        assert_eq!(film.exchange_length_sq(), 0.0);
    }
}
