//! # swphys — analytic spin-wave physics
//!
//! The design-flow companion to the micromagnetic solver: closed-form
//! spin-wave theory used to *choose* the operating point of the paper's
//! gates before any LLG simulation runs (§IV-A: "from the SW dispersion
//! relation and for k = 2π/λ, a SW frequency was determined").
//!
//! * [`dispersion`] — Kalinikos–Slavin dipole-exchange dispersion for
//!   forward-volume magnetostatic spin waves (FVMSW), the isotropic wave
//!   type the paper's out-of-plane film supports.
//! * [`film`] — internal fields and stability of a perpendicular film.
//! * [`attenuation`] — lifetime and propagation decay length from the
//!   Gilbert damping.
//! * [`waveguide`] — width-quantized modes of a narrow waveguide.
//!
//! ## Example: the paper's §IV-A design flow
//!
//! ```
//! use swphys::dispersion::FvmswDispersion;
//! use swphys::film::PerpendicularFilm;
//!
//! // Fe60Co20B20, 1 nm film, as in the paper.
//! let film = PerpendicularFilm::fecob(1e-9);
//! assert!(film.is_stable());
//! let dispersion = FvmswDispersion::for_film(&film);
//! // λ = 55 nm -> the drive frequency for the gates:
//! let k = 2.0 * std::f64::consts::PI / 55e-9;
//! let f = dispersion.frequency(k);
//! assert!(f > 1e9 && f < 40e9);
//! ```

pub mod attenuation;
pub mod dispersion;
pub mod film;
pub mod waveguide;

mod error;

pub use error::SwPhysError;

/// Vacuum permeability μ₀ in T·m/A.
pub const MU0: f64 = 1.256_637_061_435_917e-6;

/// Gyromagnetic ratio of the electron |γ| in rad/(s·T).
pub const GAMMA: f64 = 1.760_859_630_23e11;
