//! Kalinikos–Slavin dipole-exchange dispersion.
//!
//! For a perpendicular-magnetized film the lowest (uniform-across-the-
//! thickness) forward-volume mode obeys, in the Kalinikos–Slavin
//! approximation \[26\]:
//!
//! `ω(k)² = Ω(k)·(Ω(k) + ω_M·F(kd))`
//!
//! with `Ω(k) = ω₀ + ω_M·λ_ex²·k²`, `ω₀ = γμ₀·H_i`, `ω_M = γμ₀·Ms`,
//! `F(x) = 1 − (1 − e^{−x})/x`, `d` the film thickness. The dispersion is
//! **isotropic** in the film plane — the property §II-A singles out as
//! what makes FVMSWs suitable for circuit layouts with bends.

use crate::film::PerpendicularFilm;
use crate::{SwPhysError, MU0};

/// Forward-volume dipole-exchange dispersion (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FvmswDispersion {
    omega0: f64,
    omega_m: f64,
    lambda_ex_sq: f64,
    thickness: f64,
}

impl FvmswDispersion {
    /// Builds the dispersion for a stable perpendicular film.
    pub fn for_film(film: &PerpendicularFilm) -> Self {
        FvmswDispersion {
            omega0: film.gamma() * MU0 * film.internal_field(),
            omega_m: film.gamma() * MU0 * film.ms(),
            lambda_ex_sq: film.exchange_length_sq(),
            thickness: film.thickness(),
        }
    }

    /// Builds the dispersion from raw angular parameters: `omega0 = γμ₀H_i`
    /// (rad/s), `omega_m = γμ₀Ms` (rad/s), `lambda_ex_sq = 2A/(μ₀Ms²)`
    /// (m²), thickness (m).
    pub fn from_parameters(omega0: f64, omega_m: f64, lambda_ex_sq: f64, thickness: f64) -> Self {
        FvmswDispersion {
            omega0,
            omega_m,
            lambda_ex_sq,
            thickness,
        }
    }

    /// The k = 0 (FMR) angular frequency `ω₀` in rad/s.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// The magnetization frequency `ω_M = γμ₀Ms` in rad/s.
    pub fn omega_m(&self) -> f64 {
        self.omega_m
    }

    /// The dipolar form factor `F(kd) = 1 − (1 − e^{−kd})/(kd)`.
    pub fn form_factor(&self, k: f64) -> f64 {
        let x = k.abs() * self.thickness;
        if x < 1e-4 {
            // Series: F(x) = x/2 − x²/6 + x³/24 − …; the exact expression
            // suffers catastrophic cancellation for small x.
            return x / 2.0 - x * x / 6.0 + x * x * x / 24.0;
        }
        1.0 - (1.0 - (-x).exp()) / x
    }

    /// Angular frequency ω(k) in rad/s for wavenumber `k` (rad/m).
    pub fn omega(&self, k: f64) -> f64 {
        let big_omega = self.omega0 + self.omega_m * self.lambda_ex_sq * k * k;
        (big_omega * (big_omega + self.omega_m * self.form_factor(k))).sqrt()
    }

    /// Frequency f(k) in Hz.
    pub fn frequency(&self, k: f64) -> f64 {
        self.omega(k) / (2.0 * std::f64::consts::PI)
    }

    /// Frequency in Hz for a wavelength λ (m).
    pub fn frequency_for_wavelength(&self, lambda: f64) -> f64 {
        self.frequency(2.0 * std::f64::consts::PI / lambda)
    }

    /// Group velocity `dω/dk` in m/s (central finite difference).
    pub fn group_velocity(&self, k: f64) -> f64 {
        let dk = (k.abs() * 1e-6).max(1.0);
        (self.omega(k + dk) - self.omega(k - dk)) / (2.0 * dk)
    }

    /// Solves `f(k) = frequency` by bisection over `[k_min, k_max]`.
    ///
    /// The FVMSW dispersion is monotonically increasing in |k|, so the
    /// solution is unique when it exists.
    ///
    /// # Errors
    ///
    /// Returns [`SwPhysError::SolveFailed`] if the frequency is outside
    /// the band spanned by the bracket, and
    /// [`SwPhysError::InvalidParameter`] for a degenerate bracket.
    pub fn wavenumber_for_frequency(
        &self,
        frequency: f64,
        k_min: f64,
        k_max: f64,
    ) -> Result<f64, SwPhysError> {
        if !(k_min >= 0.0 && k_max > k_min) {
            return Err(SwPhysError::InvalidParameter {
                parameter: "k bracket",
                reason: format!("need 0 <= k_min < k_max, got [{k_min}, {k_max}]"),
            });
        }
        let f_lo = self.frequency(k_min);
        let f_hi = self.frequency(k_max);
        if frequency < f_lo || frequency > f_hi {
            return Err(SwPhysError::SolveFailed {
                what: "wavenumber for frequency",
                reason: format!(
                    "{:.3} GHz outside the band [{:.3}, {:.3}] GHz",
                    frequency / 1e9,
                    f_lo / 1e9,
                    f_hi / 1e9
                ),
            });
        }
        let mut lo = k_min;
        let mut hi = k_max;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.frequency(mid) < frequency {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Solves for the wavelength (m) carrying the given frequency.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FvmswDispersion::wavenumber_for_frequency`].
    pub fn wavelength_for_frequency(
        &self,
        frequency: f64,
        lambda_min: f64,
        lambda_max: f64,
    ) -> Result<f64, SwPhysError> {
        let two_pi = 2.0 * std::f64::consts::PI;
        let k =
            self.wavenumber_for_frequency(frequency, two_pi / lambda_max, two_pi / lambda_min)?;
        Ok(two_pi / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::film::PerpendicularFilm;

    fn paper_dispersion() -> FvmswDispersion {
        FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9))
    }

    #[test]
    fn band_bottom_is_the_fmr_frequency() {
        let film = PerpendicularFilm::fecob(1e-9);
        let disp = FvmswDispersion::for_film(&film);
        assert!((disp.omega(0.0) - film.fmr_omega()).abs() / film.fmr_omega() < 1e-9);
    }

    #[test]
    fn dispersion_is_monotonic_in_k() {
        let disp = paper_dispersion();
        let mut last = disp.frequency(0.0);
        for i in 1..200 {
            let k = i as f64 * 2e6; // up to 4e8 rad/m
            let f = disp.frequency(k);
            assert!(f > last, "dispersion not monotonic at k = {k}");
            last = f;
        }
    }

    #[test]
    fn dispersion_is_isotropic_in_sign() {
        let disp = paper_dispersion();
        let k = 1.1e8;
        assert!((disp.omega(k) - disp.omega(-k)).abs() < 1e-3);
    }

    #[test]
    fn paper_operating_point_is_around_ten_gigahertz() {
        // §IV-A: λ = 55 nm should map to a drive frequency of order
        // 10 GHz for this film. Our Kalinikos–Slavin evaluation lands in
        // the 10-20 GHz window (the paper's quoted 10 GHz pairs with its
        // quoted k = 50 rad/µm; see EXPERIMENTS.md for the discrepancy
        // between that k and λ = 55 nm).
        let disp = paper_dispersion();
        let f = disp.frequency_for_wavelength(55e-9);
        assert!(
            f > 8e9 && f < 25e9,
            "λ = 55 nm maps to f = {} GHz, expected 8-25 GHz",
            f / 1e9
        );
    }

    #[test]
    fn form_factor_limits() {
        let disp = paper_dispersion();
        // F(0) = 0; F(x) -> 1 for large x.
        assert!(disp.form_factor(0.0).abs() < 1e-12);
        assert!((disp.form_factor(1e13) - 1.0).abs() < 1e-3);
        // Continuity across the series/exact switchover at x = 1e-4: the
        // two branches must agree to within the series truncation error.
        let k_switch = 1e-4 / disp.thickness;
        let f1 = disp.form_factor(k_switch * 0.999);
        let f2 = disp.form_factor(k_switch * 1.001);
        assert!(
            f1 > 0.0 && f2 > f1,
            "form factor must increase: {f1} vs {f2}"
        );
        // Δx = 0.002·x = 2e-7 ⇒ ΔF ≈ Δx/2 = 1e-7; allow 2x slack. A branch
        // mismatch would show up as a jump far bigger than this.
        assert!((f2 - f1) < 2e-7, "jump across switchover: {}", f2 - f1);
    }

    #[test]
    fn wavenumber_solver_inverts_frequency() {
        let disp = paper_dispersion();
        let k_true = 2.0 * std::f64::consts::PI / 55e-9;
        let f = disp.frequency(k_true);
        let k = disp.wavenumber_for_frequency(f, 1e5, 1e9).unwrap();
        assert!((k - k_true).abs() / k_true < 1e-9);
    }

    #[test]
    fn wavelength_solver_round_trips() {
        let disp = paper_dispersion();
        let f = disp.frequency_for_wavelength(80e-9);
        let lambda = disp.wavelength_for_frequency(f, 10e-9, 1e-6).unwrap();
        assert!((lambda - 80e-9).abs() / 80e-9 < 1e-9);
    }

    #[test]
    fn solver_rejects_out_of_band_frequency() {
        let disp = paper_dispersion();
        let below_band = disp.frequency(0.0) * 0.5;
        assert!(matches!(
            disp.wavenumber_for_frequency(below_band, 0.0, 1e9),
            Err(SwPhysError::SolveFailed { .. })
        ));
    }

    #[test]
    fn solver_rejects_bad_bracket() {
        let disp = paper_dispersion();
        assert!(matches!(
            disp.wavenumber_for_frequency(10e9, 1e9, 1e5),
            Err(SwPhysError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn group_velocity_is_positive_and_sublight() {
        let disp = paper_dispersion();
        for i in 1..50 {
            let k = i as f64 * 5e6;
            let vg = disp.group_velocity(k);
            assert!(vg > 0.0, "vg({k}) = {vg}");
            assert!(vg < 1e5, "vg({k}) = {vg} unphysically large");
        }
    }

    #[test]
    fn thicker_film_has_stronger_dipolar_branch() {
        let thin = FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9));
        let thick = FvmswDispersion::for_film(&PerpendicularFilm::fecob(5e-9));
        let k = 5e7;
        assert!(thick.frequency(k) > thin.frequency(k));
    }
}
