//! Width-quantized waveguide modes.
//!
//! In a waveguide of width `w` the transverse wavenumber is quantized,
//! `k_y = nπ/w_eff` (n = 1, 2, …, with `w_eff` slightly larger than `w`
//! for partially pinned edges \[43\]). The n-th mode then disperses as
//! `ω_n(k_x) = ω(√(k_x² + k_y²))` on the isotropic film dispersion.
//!
//! The paper chooses **λ ≥ w** ("the width of the waveguide must be equal
//! or less than wavelength λ") so only the fundamental n = 1 mode
//! propagates cleanly — [`WaveguideDispersion::single_mode_at`] checks
//! that design rule.

use crate::dispersion::FvmswDispersion;
use crate::SwPhysError;

/// Edge pinning conditions for the transverse mode profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgePinning {
    /// Fully pinned edges: `w_eff = w`.
    #[default]
    Pinned,
    /// Partially pinned (dipolar) edges: `w_eff = w·(d/w → heuristic)`,
    /// modelled as `w_eff = 1.25·w`, the typical effective widening
    /// reported for nanoscopic waveguides \[43\].
    PartiallyPinned,
}

/// Dispersion of a laterally confined waveguide built on a film mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveguideDispersion {
    film: FvmswDispersion,
    width: f64,
    effective_width: f64,
}

impl WaveguideDispersion {
    /// Wraps a film dispersion for a waveguide of the given width (m).
    ///
    /// # Errors
    ///
    /// Returns [`SwPhysError::InvalidParameter`] for a non-positive width.
    pub fn new(
        film: FvmswDispersion,
        width: f64,
        pinning: EdgePinning,
    ) -> Result<Self, SwPhysError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(SwPhysError::InvalidParameter {
                parameter: "width",
                reason: format!("must be positive and finite, got {width}"),
            });
        }
        let effective_width = match pinning {
            EdgePinning::Pinned => width,
            EdgePinning::PartiallyPinned => 1.25 * width,
        };
        Ok(WaveguideDispersion {
            film,
            width,
            effective_width,
        })
    }

    /// Physical width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Effective width (after edge-pinning correction) in metres.
    pub fn effective_width(&self) -> f64 {
        self.effective_width
    }

    /// Transverse wavenumber of mode `n` (1-based) in rad/m.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (mode indices are 1-based).
    pub fn transverse_wavenumber(&self, n: usize) -> f64 {
        assert!(n >= 1, "waveguide mode indices are 1-based");
        n as f64 * std::f64::consts::PI / self.effective_width
    }

    /// Frequency (Hz) of mode `n` at longitudinal wavenumber `kx` (rad/m).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn mode_frequency(&self, n: usize, kx: f64) -> f64 {
        let ky = self.transverse_wavenumber(n);
        self.film.frequency((kx * kx + ky * ky).sqrt())
    }

    /// Cut-off frequency of mode `n` (its frequency at `kx = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn cutoff_frequency(&self, n: usize) -> f64 {
        self.mode_frequency(n, 0.0)
    }

    /// True if, at drive frequency `f`, only the fundamental mode
    /// propagates (f is above the n = 1 cut-off but below n = 2) — the
    /// paper's clean-interference design rule.
    pub fn single_mode_at(&self, f: f64) -> bool {
        f >= self.cutoff_frequency(1) && f < self.cutoff_frequency(2)
    }

    /// Longitudinal wavenumber of mode `n` carrying frequency `f`.
    ///
    /// # Errors
    ///
    /// Returns [`SwPhysError::SolveFailed`] if `f` is below the mode
    /// cut-off or outside the search bracket.
    pub fn longitudinal_wavenumber(
        &self,
        n: usize,
        f: f64,
        kx_max: f64,
    ) -> Result<f64, SwPhysError> {
        let ky = self.transverse_wavenumber(n);
        let k_total =
            self.film
                .wavenumber_for_frequency(f, ky, (kx_max * kx_max + ky * ky).sqrt())?;
        Ok((k_total * k_total - ky * ky).max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::film::PerpendicularFilm;

    fn paper_waveguide(pinning: EdgePinning) -> WaveguideDispersion {
        let film = FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9));
        WaveguideDispersion::new(film, 50e-9, pinning).unwrap()
    }

    #[test]
    fn rejects_bad_width() {
        let film = FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9));
        assert!(WaveguideDispersion::new(film, 0.0, EdgePinning::Pinned).is_err());
        assert!(WaveguideDispersion::new(film, -1e-9, EdgePinning::Pinned).is_err());
    }

    #[test]
    fn cutoffs_increase_with_mode_index() {
        let wg = paper_waveguide(EdgePinning::Pinned);
        assert!(wg.cutoff_frequency(1) < wg.cutoff_frequency(2));
        assert!(wg.cutoff_frequency(2) < wg.cutoff_frequency(3));
    }

    #[test]
    fn partially_pinned_widens_the_guide() {
        let pinned = paper_waveguide(EdgePinning::Pinned);
        let partial = paper_waveguide(EdgePinning::PartiallyPinned);
        assert!(partial.effective_width() > pinned.effective_width());
        // Wider effective guide -> lower cut-off.
        assert!(partial.cutoff_frequency(1) < pinned.cutoff_frequency(1));
    }

    #[test]
    fn mode_frequency_reduces_to_film_at_total_k() {
        let wg = paper_waveguide(EdgePinning::Pinned);
        let film = FvmswDispersion::for_film(&PerpendicularFilm::fecob(1e-9));
        let kx = 5e7;
        let ky = wg.transverse_wavenumber(1);
        let expected = film.frequency((kx * kx + ky * ky).sqrt());
        assert!((wg.mode_frequency(1, kx) - expected).abs() < 1.0);
    }

    #[test]
    fn longitudinal_wavenumber_round_trips() {
        let wg = paper_waveguide(EdgePinning::Pinned);
        let kx_true = 8e7;
        let f = wg.mode_frequency(1, kx_true);
        let kx = wg.longitudinal_wavenumber(1, f, 1e9).unwrap();
        assert!((kx - kx_true).abs() / kx_true < 1e-6);
    }

    #[test]
    fn below_cutoff_fails_to_solve() {
        let wg = paper_waveguide(EdgePinning::Pinned);
        let f = wg.cutoff_frequency(1) * 0.9;
        assert!(wg.longitudinal_wavenumber(1, f, 1e9).is_err());
    }

    #[test]
    fn single_mode_window_exists_for_the_papers_geometry() {
        let wg = paper_waveguide(EdgePinning::PartiallyPinned);
        let f1 = wg.cutoff_frequency(1);
        let f2 = wg.cutoff_frequency(2);
        let mid = 0.5 * (f1 + f2);
        assert!(wg.single_mode_at(mid));
        assert!(!wg.single_mode_at(f2 * 1.01));
        assert!(!wg.single_mode_at(f1 * 0.99));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn mode_zero_panics() {
        paper_waveguide(EdgePinning::Pinned).transverse_wavenumber(0);
    }
}
