//! # swjson — hand-rolled minimal JSON for the whole workspace
//!
//! The workspace is std-only (no `serde`), and two subsystems speak
//! JSON: the `swrun` run manifests and the `swserve` HTTP request and
//! response bodies. Both use this one small, predictable subset of
//! JSON: objects, arrays, strings, finite numbers, booleans and null.
//! [`Json`] is the value tree, with a writer ([`Json::render`]) that
//! always emits valid JSON and a recursive-descent parser
//! ([`Json::parse`] / [`Json::parse_bytes`]).
//!
//! Because `swserve` feeds the parser bytes from the network, it is
//! hardened against hostile input instead of just accepting what the
//! writer emits:
//!
//! * nesting depth is capped at [`MAX_DEPTH`] so deeply nested bodies
//!   fail cleanly instead of overflowing the stack;
//! * [`Json::parse_bytes`] rejects non-UTF-8 input with a
//!   [`JsonError`] (never a panic);
//! * numbers that overflow `f64` (`1e999`) are rejected rather than
//!   silently becoming `∞`;
//! * truncated documents and invalid escapes fail with a byte offset;
//! * duplicate object keys follow the common last-one-wins rule (the
//!   behaviour of `serde_json` and JavaScript's `JSON.parse`), which is
//!   documented and pinned by regression test.
//!
//! Rendering is canonical: object keys are sorted (the map is a
//! `BTreeMap`) and numbers use the shortest round-trip form, so
//! `parse(text).render()` is a normal form — `swserve` hashes exactly
//! that for its content-addressed cache.
//!
//! Non-finite numbers (`NaN`, `±∞`) serialize as `null`, mirroring what
//! `serde_json` does — manifests must stay loadable by stock JSON tools.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum container nesting the parser accepts. Deeper input returns a
/// [`JsonError`] instead of risking a stack overflow on hostile bodies.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite double (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's array elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value's key/value map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` round-trips f64 exactly (shortest form).
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (surrounding whitespace
    /// allowed). Duplicate object keys are accepted, last one wins.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input,
    /// trailing garbage, nesting deeper than [`MAX_DEPTH`], or numbers
    /// outside the finite `f64` range.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                reason: "trailing characters after JSON value".into(),
            });
        }
        Ok(value)
    }

    /// Parses one JSON value from raw bytes, as read off a socket.
    /// Non-UTF-8 input is rejected with a [`JsonError`] at the first
    /// invalid byte — it never panics.
    ///
    /// # Errors
    ///
    /// Everything [`Json::parse`] rejects, plus invalid UTF-8.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
            at: e.valid_up_to(),
            reason: "invalid UTF-8 in input".into(),
        })?;
        Json::parse(text)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, reason: impl Into<String>) -> JsonError {
    JsonError {
        at: pos,
        reason: reason.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(fail(*pos, format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth >= MAX_DEPTH {
        return Err(fail(
            *pos,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(fail(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                // Duplicate keys: last one wins (serde_json behaviour).
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(fail(*pos, "expected `\"`"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| fail(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| fail(*pos, "invalid \\u escape"))?;
                        // Surrogates are not produced by our writer;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(fail(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input came from a
                // &str, so boundaries are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| fail(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(fail(start, "expected a JSON value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII by construction");
    match text.parse::<f64>() {
        // `f64::from_str` saturates huge literals to ±∞; a server must
        // not quietly turn `1e999` into infinity, so reject instead.
        Ok(x) if x.is_finite() => Ok(Json::Num(x)),
        Ok(_) => Err(fail(start, format!("number `{text}` overflows f64"))),
        Err(_) => Err(fail(start, format!("invalid number `{text}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        let text = value.render();
        let parsed = Json::parse(&text).expect("parse back");
        assert_eq!(&parsed, value, "round trip failed for `{text}`");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1e-30),
            Json::Num(1234567890.125),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t ü λ"),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        round_trip(&Json::obj([
            ("id", Json::str("maj3/011")),
            ("ok", Json::Bool(true)),
            (
                "outputs",
                Json::obj([("o1", Json::Num(1.25e-3)), ("o2", Json::Num(0.9e-3))]),
            ),
            (
                "pattern",
                Json::Arr(vec![Json::Num(0.0), Json::Num(1.0), Json::Num(1.0)]),
            ),
            ("note", Json::Null),
        ]));
    }

    #[test]
    fn numbers_keep_full_precision() {
        let x = 0.123_456_789_012_345_68;
        let Json::Num(back) = Json::parse(&Json::Num(x).render()).unwrap() else {
            panic!("expected number");
        };
        assert_eq!(back, x);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 ] , \"b\\u0041\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert!(v.get("bA").unwrap() == &Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "12x", "true false"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn object_keys_render_sorted_and_deterministic() {
        let v = Json::obj([("zeta", Json::Num(1.0)), ("alpha", Json::Num(2.0))]);
        assert_eq!(v.render(), "{\"alpha\":2.0,\"zeta\":1.0}");
    }

    #[test]
    fn accessors_return_expected_views() {
        let v = Json::obj([
            ("s", Json::str("x")),
            ("n", Json::Num(4.0)),
            ("b", Json::Bool(true)),
        ]);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
        assert!(v.as_obj().is_some());
        assert!(Json::Null.as_obj().is_none());
    }

    // ---- server-facing hardening regressions ------------------------

    #[test]
    fn all_escape_sequences_decode() {
        let v = Json::parse(r#""\" \\ \/ \n \r \t \b \f A é λ""#).unwrap();
        assert_eq!(
            v.as_str(),
            Some("\" \\ / \n \r \t \u{8} \u{c} A \u{e9} \u{3bb}")
        );
    }

    #[test]
    fn control_characters_round_trip_as_escapes() {
        let s = "\u{0}\u{1}\u{1f} end";
        let rendered = Json::str(s).render();
        assert!(rendered.contains("\\u0000"));
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unpaired_surrogate_escapes_become_replacement_chars() {
        let v = Json::parse(r#""\ud83d""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}"));
    }

    #[test]
    fn invalid_escapes_are_rejected() {
        for bad in [r#""\x""#, r#""\u12""#, r#""\u12zz""#, "\"\\"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn nesting_up_to_the_limit_parses() {
        let depth = MAX_DEPTH;
        let text = "[".repeat(depth) + &"]".repeat(depth);
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        for depth in [MAX_DEPTH + 1, 10_000] {
            let text = "[".repeat(depth) + &"]".repeat(depth);
            let err = Json::parse(&text).expect_err("must reject deep nesting");
            assert!(err.reason.contains("nesting"), "{err}");
            let text = "{\"k\":".repeat(depth) + "null" + &"}".repeat(depth);
            assert!(Json::parse(&text).is_err());
        }
    }

    #[test]
    fn truncated_bodies_error_at_every_prefix() {
        let full = r#"{"gate":"maj3","inputs":[0,1,1],"note":"esc A","nested":{"x":1.5e3}}"#;
        assert!(Json::parse(full).is_ok());
        for cut in 1..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            assert!(
                Json::parse(prefix).is_err(),
                "truncated prefix `{prefix}` must not parse"
            );
        }
    }

    #[test]
    fn duplicate_keys_last_one_wins() {
        let v = Json::parse(r#"{"a":1,"b":2,"a":3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.as_obj().unwrap().len(), 2);
    }

    #[test]
    fn parse_bytes_rejects_non_utf8_without_panicking() {
        let cases: [&[u8]; 3] = [b"{\"a\":\"\xff\xfe\"}", b"\xc3", b"[1,2,\x80]"];
        for bytes in cases {
            let err = Json::parse_bytes(bytes).expect_err("must reject non-UTF-8");
            assert!(err.reason.contains("UTF-8"), "{err}");
        }
        assert_eq!(
            Json::parse_bytes(br#"{"ok":true}"#).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn overflowing_numbers_are_rejected() {
        for bad in ["1e999", "-1e999", "1e400"] {
            let err = Json::parse(bad).expect_err("must reject overflow");
            assert!(err.reason.contains("overflows"), "{err}");
        }
        // Subnormal underflow to zero is fine (still finite).
        assert_eq!(Json::parse("1e-999").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn error_offsets_point_at_the_problem() {
        let err = Json::parse(r#"{"a": nope}"#).unwrap_err();
        assert_eq!(err.at, 6);
        let err = Json::parse("[1, 2,]").unwrap_err();
        assert_eq!(err.at, 6);
    }
}
