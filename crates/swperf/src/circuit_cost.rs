//! Circuit-level energy/delay/area estimation.
//!
//! The paper motivates multi-output gates with circuit-level savings
//! (§I) and points to the hybrid CMOS–SW benchmarks of \[42\]. This module
//! estimates the cost of a [`swgates::circuit::Circuit`] netlist under
//! the spin-wave transducer model, and compares fan-out-of-2 designs
//! against the replication a single-output gate library would need.

use swgates::circuit::{Circuit, Signal};

use crate::mecell::MeCell;
use crate::GateCost;

/// Cost estimate for one circuit implementation style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitCost {
    /// Total energy per evaluation (joules).
    pub energy: f64,
    /// Critical-path delay (seconds) assuming one ME-cell delay per
    /// logic level.
    pub delay: f64,
    /// Total transducer count.
    pub transducers: usize,
    /// Number of gate instances (after any replication).
    pub gates: usize,
}

impl CircuitCost {
    /// Energy in attojoules.
    pub fn energy_aj(&self) -> f64 {
        self.energy * 1e18
    }

    /// Delay in nanoseconds.
    pub fn delay_ns(&self) -> f64 {
        self.delay * 1e9
    }
}

/// Estimates the cost of a netlist built from the **fan-out-of-2
/// triangle gates**: each gate is placed once and its two outputs drive
/// up to two loads directly.
///
/// Delay is `levels × t_ME`, with `levels` the longest input-to-output
/// gate chain (assumption (iii): propagation is free).
pub fn fanout2_cost(circuit: &Circuit, me: &MeCell) -> CircuitCost {
    let (excitations, detections) = circuit.transducer_counts();
    CircuitCost {
        energy: me.excitation_energy() * excitations as f64,
        delay: me.delay() * levels(circuit) as f64,
        transducers: excitations + detections,
        gates: circuit.gate_count(),
    }
}

/// Estimates the cost of the same netlist implemented with
/// **single-output gates**: every gate whose output drives `n > 1` loads
/// must be replicated `n` times (the §I scenario the paper's fan-out
/// avoids), multiplying its excitation energy and transducers.
pub fn replicated_cost(circuit: &Circuit, me: &MeCell) -> CircuitCost {
    let mut energy = 0.0;
    let mut transducers = 0;
    let mut gates = 0;
    for g in 0..circuit.gate_count() {
        let kind = circuit
            .gate_kind(g)
            .expect("gate index is in range by construction");
        let copies = circuit.fanout_of(Signal::Gate(g)).max(1);
        energy += me.excitation_energy() * (kind.excitation_cells() * copies) as f64;
        // Single-output variant: one detector per copy.
        transducers += (kind.excitation_cells() + 1) * copies;
        gates += copies;
    }
    CircuitCost {
        energy,
        delay: me.delay() * levels(circuit) as f64,
        transducers,
        gates,
    }
}

/// Longest gate chain from any primary input to any output.
fn levels(circuit: &Circuit) -> usize {
    let mut depth = vec![0usize; circuit.gate_count()];
    for g in 0..circuit.gate_count() {
        let inputs = circuit
            .gate_inputs(g)
            .expect("gate index is in range by construction");
        let max_in = inputs
            .iter()
            .map(|s| match *s {
                Signal::Input(_) => 0,
                Signal::Gate(p) => depth[p],
            })
            .max()
            .unwrap_or(0);
        depth[g] = max_in + 1;
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Convenience: compares the FO2 and replicated implementations of a
/// circuit, returning `(fo2, replicated, energy_saving_fraction)`.
pub fn fanout_advantage(circuit: &Circuit, me: &MeCell) -> (CircuitCost, CircuitCost, f64) {
    let fo2 = fanout2_cost(circuit, me);
    let rep = replicated_cost(circuit, me);
    let saving = if rep.energy > 0.0 {
        1.0 - fo2.energy / rep.energy
    } else {
        0.0
    };
    (fo2, rep, saving)
}

/// Area proxy: transducer count × an ME-cell footprint, plus waveguide
/// area per gate; used for the area-delay-power style comparisons of
/// \[42\]. Returns m².
pub fn area_estimate(cost: &CircuitCost, me_cell_area: f64, waveguide_area_per_gate: f64) -> f64 {
    cost.transducers as f64 * me_cell_area + cost.gates as f64 * waveguide_area_per_gate
}

/// A [`GateCost`] view of a circuit cost (for uniform reporting).
pub fn as_gate_cost(cost: &CircuitCost) -> GateCost {
    GateCost::new(cost.energy, cost.delay, cost.transducers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgates::circuit::GateKind;

    fn me() -> MeCell {
        MeCell::paper()
    }

    #[test]
    fn full_adder_fo2_cost() {
        let fa = Circuit::full_adder();
        let cost = fanout2_cost(&fa, &me());
        // 2 XOR (2 exc) + 1 MAJ3 (3 exc) = 7 excitations -> 24.08 aJ.
        assert!((cost.energy_aj() - 7.0 * 3.44).abs() < 1e-9);
        // Critical path: XOR -> XOR = 2 levels.
        assert!((cost.delay_ns() - 0.84).abs() < 1e-9);
        assert_eq!(cost.gates, 3);
        assert_eq!(cost.transducers, 13);
    }

    #[test]
    fn replication_costs_more_when_fanout_is_used() {
        // In the ripple-carry adder every interior carry drives 2 loads,
        // so the replicated implementation must duplicate those MAJ3s.
        let adder = Circuit::ripple_carry_adder(8);
        let (fo2, rep, saving) = fanout_advantage(&adder, &me());
        assert!(rep.energy > fo2.energy, "replication should cost more");
        assert!(saving > 0.1, "saving = {saving}");
        assert!(rep.gates > fo2.gates);
        // Same logic depth either way.
        assert_eq!(fo2.delay, rep.delay);
    }

    #[test]
    fn fanout_free_circuit_has_no_advantage() {
        // carry = MAJ3(a, b, cin), single output, no shared signals.
        let mut c = Circuit::new(3);
        let g = c
            .add_gate(
                GateKind::Maj3,
                vec![Signal::Input(0), Signal::Input(1), Signal::Input(2)],
            )
            .unwrap();
        c.mark_output(g).unwrap();
        let (fo2, rep, saving) = fanout_advantage(&c, &me());
        assert!((fo2.energy - rep.energy).abs() < 1e-30);
        assert!(saving.abs() < 1e-12);
    }

    #[test]
    fn levels_counts_longest_chain() {
        let adder = Circuit::ripple_carry_adder(4);
        let cost = fanout2_cost(&adder, &me());
        // Carry chain: 4 MAJ3 levels, plus the first stage's XOR feeding
        // sum — longest chain is carry[0..3] then stage-3 sum XOR: 5.
        assert!(cost.delay_ns() >= 4.0 * 0.42 - 1e-9);
    }

    #[test]
    fn area_scales_with_transducers() {
        let fa = Circuit::full_adder();
        let cost = fanout2_cost(&fa, &me());
        let a1 = area_estimate(&cost, 100e-9 * 100e-9, 1e-12);
        let a2 = area_estimate(&cost, 200e-9 * 200e-9, 1e-12);
        assert!(a2 > a1);
    }

    #[test]
    fn gate_cost_view_round_trips() {
        let fa = Circuit::full_adder();
        let cost = fanout2_cost(&fa, &me());
        let gc = as_gate_cost(&cost);
        assert_eq!(gc.energy(), cost.energy);
        assert_eq!(gc.delay(), cost.delay);
    }
}
