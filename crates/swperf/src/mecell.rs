//! The magnetoelectric (ME) transducer model — §IV-D assumptions.
//!
//! The paper evaluates all spin-wave gates under a fixed set of
//! assumptions for fair comparison with \[23\]:
//!
//! 1. ME cells excite and detect the spin waves.
//! 2. An ME cell consumes **34.4 nW** and has a delay of **0.42 ns**
//!    (from \[42\]).
//! 3. Spin-wave propagation delay in the waveguide is neglected.
//! 4. Propagation loss is negligible against transducer loss.
//! 5. The output feeds the next spin-wave gate directly (no conversion
//!    cost at the detectors).
//! 6. Excitation uses **100 ps** pulses — so each driven input costs
//!    `34.4 nW × 100 ps = 3.44 aJ`.

/// Magnetoelectric transducer parameters.
///
/// ```
/// use swperf::mecell::MeCell;
/// let me = MeCell::paper();
/// assert!((me.excitation_energy() - 3.44e-18).abs() < 1e-21);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeCell {
    power_w: f64,
    delay_s: f64,
    pulse_s: f64,
}

impl MeCell {
    /// The paper's ME cell: 34.4 nW, 0.42 ns delay, 100 ps pulses.
    pub fn paper() -> Self {
        MeCell {
            power_w: 34.4e-9,
            delay_s: 0.42e-9,
            pulse_s: 100e-12,
        }
    }

    /// A custom transducer model.
    pub fn new(power_w: f64, delay_s: f64, pulse_s: f64) -> Self {
        MeCell {
            power_w,
            delay_s,
            pulse_s,
        }
    }

    /// Cell power draw in watts.
    pub fn power(&self) -> f64 {
        self.power_w
    }

    /// Cell switching delay in seconds.
    pub fn delay(&self) -> f64 {
        self.delay_s
    }

    /// Excitation pulse duration in seconds.
    pub fn pulse_duration(&self) -> f64 {
        self.pulse_s
    }

    /// Energy consumed by one excitation: `P × t_pulse` (3.44 aJ for the
    /// paper's parameters).
    pub fn excitation_energy(&self) -> f64 {
        self.power_w * self.pulse_s
    }

    /// Gate-level energy when `n` inputs are excited (detection is
    /// assumed free under assumption (v): the output wave feeds the next
    /// gate directly).
    pub fn gate_energy(&self, excited_inputs: usize) -> f64 {
        self.excitation_energy() * excited_inputs as f64
    }

    /// Gate-level delay: dominated by the ME cell response (assumption
    /// (iii) neglects propagation). The paper rounds 0.42 ns to the
    /// 0.4 ns reported in Table III.
    pub fn gate_delay(&self) -> f64 {
        self.delay_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let me = MeCell::paper();
        assert_eq!(me.power(), 34.4e-9);
        assert_eq!(me.delay(), 0.42e-9);
        assert_eq!(me.pulse_duration(), 100e-12);
    }

    #[test]
    fn excitation_energy_is_3_44_aj() {
        let me = MeCell::paper();
        assert!((me.excitation_energy() * 1e18 - 3.44).abs() < 1e-12);
    }

    #[test]
    fn maj_energy_matches_table_iii() {
        // Triangle MAJ3: 3 excited inputs -> 10.32 aJ (Table III: 10.3).
        let me = MeCell::paper();
        assert!((me.gate_energy(3) * 1e18 - 10.32).abs() < 1e-9);
        // Triangle XOR: 2 excited inputs -> 6.88 aJ (Table III: 6.9).
        assert!((me.gate_energy(2) * 1e18 - 6.88).abs() < 1e-9);
        // Ladder gates [23]: 4 excited inputs -> 13.76 aJ (Table III: 13.7).
        assert!((me.gate_energy(4) * 1e18 - 13.76).abs() < 1e-9);
    }

    #[test]
    fn custom_cell_scales_linearly() {
        let me = MeCell::new(10e-9, 1e-9, 50e-12);
        assert!((me.excitation_energy() - 0.5e-18).abs() < 1e-30);
        assert!((me.gate_energy(4) - 2e-18).abs() < 1e-30);
    }
}
