//! Table III assembly and the §IV-D ratio analysis.

use std::fmt;

use crate::cmos::{cmos_cost, CmosGate, CmosNode};
use crate::swcost::SwGateKind;
use crate::GateCost;

/// The complete Table III: every design's energy/delay/cell count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// 16 nm CMOS MAJ (\[40\]).
    pub cmos16_maj: GateCost,
    /// 16 nm CMOS XOR (\[40\]).
    pub cmos16_xor: GateCost,
    /// 7 nm CMOS MAJ (\[41\]).
    pub cmos7_maj: GateCost,
    /// 7 nm CMOS XOR (\[41\]).
    pub cmos7_xor: GateCost,
    /// Ladder SW MAJ (\[23\]).
    pub sw_prior_maj: GateCost,
    /// Ladder SW XOR (\[23\]).
    pub sw_prior_xor: GateCost,
    /// Triangle MAJ (this work).
    pub this_work_maj: GateCost,
    /// Triangle XOR (this work).
    pub this_work_xor: GateCost,
}

impl Comparison {
    /// Builds the table with the paper's assumptions.
    pub fn paper() -> Self {
        Comparison {
            cmos16_maj: cmos_cost(CmosNode::N16, CmosGate::Maj3),
            cmos16_xor: cmos_cost(CmosNode::N16, CmosGate::Xor),
            cmos7_maj: cmos_cost(CmosNode::N7, CmosGate::Maj3),
            cmos7_xor: cmos_cost(CmosNode::N7, CmosGate::Xor),
            sw_prior_maj: SwGateKind::LadderMaj3.paper_cost(),
            sw_prior_xor: SwGateKind::LadderXor.paper_cost(),
            this_work_maj: SwGateKind::TriangleMaj3.paper_cost(),
            this_work_xor: SwGateKind::TriangleXor.paper_cost(),
        }
    }

    /// The §IV-D headline ratios derived from the table.
    pub fn ratios(&self) -> Ratios {
        Ratios {
            energy_saving_vs_sw_maj: 1.0 - self.this_work_maj.energy() / self.sw_prior_maj.energy(),
            energy_saving_vs_sw_xor: 1.0 - self.this_work_xor.energy() / self.sw_prior_xor.energy(),
            energy_reduction_vs_cmos16_maj: self.cmos16_maj.energy() / self.this_work_maj.energy(),
            energy_reduction_vs_cmos16_xor: self.cmos16_xor.energy() / self.this_work_xor.energy(),
            energy_reduction_vs_cmos7_maj: self.cmos7_maj.energy() / self.this_work_maj.energy(),
            energy_reduction_vs_cmos7_xor: self.cmos7_xor.energy() / self.this_work_xor.energy(),
            delay_overhead_vs_cmos16_maj: self.this_work_maj.delay() / self.cmos16_maj.delay(),
            delay_overhead_vs_cmos16_xor: self.this_work_xor.delay() / self.cmos16_xor.delay(),
            delay_overhead_vs_cmos7_maj: self.this_work_maj.delay() / self.cmos7_maj.delay(),
            delay_overhead_vs_cmos7_xor: self.this_work_xor.delay() / self.cmos7_xor.delay(),
        }
    }

    /// Renders the table in the paper's layout (rows: technology,
    /// function, cell count, delay, energy).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Table III analogue — performance comparison\n\
             design          function  cells  delay(ns)  energy(aJ)\n",
        );
        let mut row = |name: &str, func: &str, c: &GateCost| {
            out.push_str(&format!(
                "{name:<15} {func:<9} {:>5}  {:>9.2}  {:>10.2}\n",
                c.device_count(),
                c.delay_ns(),
                c.energy_aj()
            ));
        };
        row("16nm CMOS [40]", "MAJ", &self.cmos16_maj);
        row("16nm CMOS [40]", "XOR", &self.cmos16_xor);
        row("7nm CMOS [41]", "MAJ", &self.cmos7_maj);
        row("7nm CMOS [41]", "XOR", &self.cmos7_xor);
        row("SW ladder [23]", "MAJ", &self.sw_prior_maj);
        row("SW ladder [23]", "XOR", &self.sw_prior_xor);
        row("SW this work", "MAJ", &self.this_work_maj);
        row("SW this work", "XOR", &self.this_work_xor);
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The derived §IV-D ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratios {
    /// Energy saved vs the ladder SW MAJ (paper: 25 %).
    pub energy_saving_vs_sw_maj: f64,
    /// Energy saved vs the ladder SW XOR (paper: 50 %).
    pub energy_saving_vs_sw_xor: f64,
    /// Energy reduction factor vs 16 nm CMOS MAJ (paper's table: ~45×;
    /// its §IV-D prose says 11× — see EXPERIMENTS.md).
    pub energy_reduction_vs_cmos16_maj: f64,
    /// Energy reduction factor vs 16 nm CMOS XOR (paper: ~43×).
    pub energy_reduction_vs_cmos16_xor: f64,
    /// Energy reduction factor vs 7 nm CMOS MAJ (paper: ~1.6×).
    pub energy_reduction_vs_cmos7_maj: f64,
    /// Energy reduction factor vs 7 nm CMOS XOR (paper: ~0.8×).
    pub energy_reduction_vs_cmos7_xor: f64,
    /// Delay overhead vs 16 nm CMOS MAJ (paper: 13×).
    pub delay_overhead_vs_cmos16_maj: f64,
    /// Delay overhead vs 16 nm CMOS XOR (paper: 13×).
    pub delay_overhead_vs_cmos16_xor: f64,
    /// Delay overhead vs 7 nm CMOS MAJ (paper: 20×).
    pub delay_overhead_vs_cmos7_maj: f64,
    /// Delay overhead vs 7 nm CMOS XOR (paper: 40×).
    pub delay_overhead_vs_cmos7_xor: f64,
}

impl Ratios {
    /// Renders the ratios next to the paper's claims.
    pub fn render(&self) -> String {
        format!(
            "§IV-D ratio analysis (measured vs paper claim)\n\
             energy saving vs SW ladder  MAJ: {:>5.1}%  (paper: 25%)\n\
             energy saving vs SW ladder  XOR: {:>5.1}%  (paper: 50%)\n\
             energy reduction vs 16nm    MAJ: {:>5.1}x  (paper table: ~45x; prose: 11x)\n\
             energy reduction vs 16nm    XOR: {:>5.1}x  (paper: 43x)\n\
             energy reduction vs 7nm     MAJ: {:>5.1}x  (paper: 1.6x)\n\
             energy reduction vs 7nm     XOR: {:>5.1}x  (paper: 0.8x)\n\
             delay overhead vs 16nm      MAJ: {:>5.1}x  (paper: 13x)\n\
             delay overhead vs 16nm      XOR: {:>5.1}x  (paper: 13x)\n\
             delay overhead vs 7nm       MAJ: {:>5.1}x  (paper: 20x)\n\
             delay overhead vs 7nm       XOR: {:>5.1}x  (paper: 40x)\n",
            self.energy_saving_vs_sw_maj * 100.0,
            self.energy_saving_vs_sw_xor * 100.0,
            self.energy_reduction_vs_cmos16_maj,
            self.energy_reduction_vs_cmos16_xor,
            self.energy_reduction_vs_cmos7_maj,
            self.energy_reduction_vs_cmos7_xor,
            self.delay_overhead_vs_cmos16_maj,
            self.delay_overhead_vs_cmos16_xor,
            self.delay_overhead_vs_cmos7_maj,
            self.delay_overhead_vs_cmos7_xor,
        )
    }
}

impl fmt::Display for Ratios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_the_paper() {
        let t = Comparison::paper();
        assert!((t.this_work_maj.energy_aj() - 10.32).abs() < 0.05);
        assert!((t.this_work_xor.energy_aj() - 6.88).abs() < 0.05);
        assert!((t.sw_prior_maj.energy_aj() - 13.76).abs() < 0.05);
        assert_eq!(t.this_work_maj.device_count(), 5);
        assert_eq!(t.this_work_xor.device_count(), 4);
        assert_eq!(t.sw_prior_maj.device_count(), 6);
    }

    #[test]
    fn ratios_match_the_paper_claims() {
        let r = Comparison::paper().ratios();
        // Abstract: 25%-50% energy saving vs prior SW.
        assert!((r.energy_saving_vs_sw_maj - 0.25).abs() < 0.01);
        assert!((r.energy_saving_vs_sw_xor - 0.50).abs() < 0.01);
        // Abstract: 43x-0.8x vs CMOS.
        assert!(
            (r.energy_reduction_vs_cmos16_xor - 44.0).abs() < 1.5,
            "{}",
            r.energy_reduction_vs_cmos16_xor
        );
        assert!((r.energy_reduction_vs_cmos7_xor - 0.78).abs() < 0.05);
        assert!((r.energy_reduction_vs_cmos7_maj - 1.59).abs() < 0.05);
        // §IV-D: 13x/20x/40x delay overheads (ME delay 0.42 vs table 0.4
        // gives 14 vs 13 — within the paper's rounding).
        assert!((r.delay_overhead_vs_cmos16_maj - 14.0).abs() < 1.5);
        assert!((r.delay_overhead_vs_cmos7_maj - 21.0).abs() < 1.5);
        assert!((r.delay_overhead_vs_cmos7_xor - 42.0).abs() < 3.0);
    }

    #[test]
    fn text_table_mentions_the_abstract_discrepancy() {
        // The paper's §IV-D prose claims 11x for MAJ vs 16 nm CMOS while
        // its own Table III numbers give 466/10.3 ≈ 45x; we reproduce
        // the table and document the prose mismatch.
        let r = Comparison::paper().ratios();
        assert!(r.energy_reduction_vs_cmos16_maj > 40.0);
        assert!(r.render().contains("prose: 11x"));
    }

    #[test]
    fn render_contains_all_rows() {
        let text = Comparison::paper().render();
        assert_eq!(text.lines().count(), 10);
        assert!(text.contains("SW this work"));
        assert!(text.contains("16nm CMOS"));
    }
}
