//! Spin-wave gate cost records: the triangle gates of this work and the
//! ladder baselines of \[22\], \[23\].

use crate::mecell::MeCell;
use crate::GateCost;

/// Which spin-wave gate implementation is being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwGateKind {
    /// Triangle fan-out-of-2 MAJ3 (this work): 3 excitation + 2
    /// detection cells.
    TriangleMaj3,
    /// Triangle fan-out-of-2 XOR (this work): 2 excitation + 2 detection
    /// cells.
    TriangleXor,
    /// Ladder MAJ3 baseline (\[22\], \[23\]): the fan-out needs a replicated
    /// input — 4 excitation + 2 detection cells.
    LadderMaj3,
    /// Ladder XOR baseline (\[23\]): the programmable structure drives 4
    /// transducers as well.
    LadderXor,
}

impl SwGateKind {
    /// Number of excitation transducers (the energy-consuming cells
    /// under the paper's assumptions).
    pub fn excitation_cells(self) -> usize {
        match self {
            SwGateKind::TriangleMaj3 => 3,
            SwGateKind::TriangleXor => 2,
            SwGateKind::LadderMaj3 | SwGateKind::LadderXor => 4,
        }
    }

    /// Number of detection transducers.
    pub fn detection_cells(self) -> usize {
        2
    }

    /// Total transducer count (the "Used cell No." row of Table III).
    pub fn cell_count(self) -> usize {
        self.excitation_cells() + self.detection_cells()
    }

    /// Cost under a transducer model.
    pub fn cost(self, me: &MeCell) -> GateCost {
        GateCost::new(
            me.gate_energy(self.excitation_cells()),
            me.gate_delay(),
            self.cell_count(),
        )
    }

    /// Cost under the paper's ME-cell assumptions.
    pub fn paper_cost(self) -> GateCost {
        self.cost(&MeCell::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counts_match_table_iii() {
        assert_eq!(SwGateKind::TriangleMaj3.cell_count(), 5);
        assert_eq!(SwGateKind::TriangleXor.cell_count(), 4);
        assert_eq!(SwGateKind::LadderMaj3.cell_count(), 6);
        assert_eq!(SwGateKind::LadderXor.cell_count(), 6);
    }

    #[test]
    fn energies_match_table_iii() {
        assert!((SwGateKind::TriangleMaj3.paper_cost().energy_aj() - 10.32).abs() < 0.05);
        assert!((SwGateKind::TriangleXor.paper_cost().energy_aj() - 6.88).abs() < 0.05);
        assert!((SwGateKind::LadderMaj3.paper_cost().energy_aj() - 13.76).abs() < 0.05);
        assert!((SwGateKind::LadderXor.paper_cost().energy_aj() - 13.76).abs() < 0.05);
    }

    #[test]
    fn delays_are_the_me_cell_delay() {
        for kind in [
            SwGateKind::TriangleMaj3,
            SwGateKind::TriangleXor,
            SwGateKind::LadderMaj3,
            SwGateKind::LadderXor,
        ] {
            assert!((kind.paper_cost().delay_ns() - 0.42).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_saves_25_and_50_percent_vs_ladder() {
        // §IV-D: 25% (MAJ) and 50% (XOR) energy savings vs [22]/[23].
        let maj_saving = 1.0
            - SwGateKind::TriangleMaj3.paper_cost().energy()
                / SwGateKind::LadderMaj3.paper_cost().energy();
        let xor_saving = 1.0
            - SwGateKind::TriangleXor.paper_cost().energy()
                / SwGateKind::LadderXor.paper_cost().energy();
        assert!(
            (maj_saving - 0.25).abs() < 1e-9,
            "MAJ saving = {maj_saving}"
        );
        assert!(
            (xor_saving - 0.50).abs() < 1e-9,
            "XOR saving = {xor_saving}"
        );
    }
}
