//! Published CMOS gate data used by Table III.
//!
//! The paper compares against 16 nm CMOS \[40\] and 7 nm CMOS \[41\], with a
//! 3-input Majority gate "built from 4 NAND gates" and the XOR taken
//! directly from the references. Only the bottom-line per-gate numbers
//! enter Table III; they are reproduced here as data.

use crate::GateCost;

/// CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosNode {
    /// 16 nm CMOS (\[40\]).
    N16,
    /// 7 nm CMOS (\[41\]).
    N7,
}

/// CMOS gate flavour compared in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosGate {
    /// 3-input majority (4-NAND construction; 16 transistors).
    Maj3,
    /// 2-input XOR (8 transistors).
    Xor,
}

/// Table III's CMOS rows: (energy, delay, transistor count).
pub fn cmos_cost(node: CmosNode, gate: CmosGate) -> GateCost {
    match (node, gate) {
        (CmosNode::N16, CmosGate::Maj3) => GateCost::new(466e-18, 0.03e-9, 16),
        (CmosNode::N16, CmosGate::Xor) => GateCost::new(303e-18, 0.03e-9, 8),
        (CmosNode::N7, CmosGate::Maj3) => GateCost::new(16.4e-18, 0.02e-9, 16),
        (CmosNode::N7, CmosGate::Xor) => GateCost::new(5.4e-18, 0.01e-9, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let c = cmos_cost(CmosNode::N16, CmosGate::Maj3);
        assert_eq!(c.energy_aj(), 466.0);
        assert!((c.delay_ns() - 0.03).abs() < 1e-12);
        assert_eq!(c.device_count(), 16);

        let c = cmos_cost(CmosNode::N7, CmosGate::Xor);
        assert!((c.energy_aj() - 5.4).abs() < 1e-9);
        assert!((c.delay_ns() - 0.01).abs() < 1e-12);
        assert_eq!(c.device_count(), 8);
    }

    #[test]
    fn newer_node_is_cheaper_and_faster() {
        for gate in [CmosGate::Maj3, CmosGate::Xor] {
            let old = cmos_cost(CmosNode::N16, gate);
            let new = cmos_cost(CmosNode::N7, gate);
            assert!(new.energy() < old.energy());
            assert!(new.delay() <= old.delay());
        }
    }
}
