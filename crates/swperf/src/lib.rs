//! # swperf — energy, delay and area models for spin-wave and CMOS gates
//!
//! The performance-evaluation layer of the reproduction: everything
//! needed to regenerate **Table III** of the paper and the ratio claims
//! of §IV-D, plus a circuit-level estimator in the spirit of the hybrid
//! benchmarks the paper cites (\[42\]).
//!
//! * [`mecell`] — the magnetoelectric transducer model and the paper's
//!   assumptions (i)–(vi).
//! * [`swcost`] — per-gate transducer counts and energy/delay for the
//!   triangle gates (this work) and the ladder baselines (\[22\], \[23\]).
//! * [`cmos`] — the published 16 nm and 7 nm CMOS gate data (\[40\], \[41\]).
//! * [`compare`] — Table III assembly and the §IV-D ratio analysis.
//! * [`circuit_cost`] — energy/delay/area estimates for gate netlists
//!   built with [`swgates::circuit`].
//!
//! ## Example: the headline numbers
//!
//! ```
//! use swperf::compare::Comparison;
//! let table = Comparison::paper();
//! // This work: MAJ 10.3 aJ / XOR 6.9 aJ at 0.4 ns (after rounding).
//! assert!((table.this_work_maj.energy_aj() - 10.3).abs() < 0.1);
//! assert!((table.this_work_xor.energy_aj() - 6.9).abs() < 0.1);
//! ```

pub mod circuit_cost;
pub mod cmos;
pub mod compare;
pub mod mecell;
pub mod swcost;

/// An energy/delay figure of merit for one gate implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCost {
    energy_j: f64,
    delay_s: f64,
    device_count: usize,
}

impl GateCost {
    /// Creates a cost record (energy in joules, delay in seconds,
    /// transistor/transducer count).
    pub fn new(energy_j: f64, delay_s: f64, device_count: usize) -> Self {
        GateCost {
            energy_j,
            delay_s,
            device_count,
        }
    }

    /// Energy per evaluation in joules.
    pub fn energy(&self) -> f64 {
        self.energy_j
    }

    /// Energy in attojoules (the unit of Table III).
    pub fn energy_aj(&self) -> f64 {
        self.energy_j * 1e18
    }

    /// Delay in seconds.
    pub fn delay(&self) -> f64 {
        self.delay_s
    }

    /// Delay in nanoseconds (the unit of Table III).
    pub fn delay_ns(&self) -> f64 {
        self.delay_s * 1e9
    }

    /// Number of devices (transistors for CMOS, transducer cells for SW).
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Energy-delay product in J·s.
    pub fn energy_delay_product(&self) -> f64 {
        self.energy_j * self.delay_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let c = GateCost::new(10.3e-18, 0.4e-9, 5);
        assert!((c.energy_aj() - 10.3).abs() < 1e-9);
        assert!((c.delay_ns() - 0.4).abs() < 1e-12);
        assert_eq!(c.device_count(), 5);
        assert!((c.energy_delay_product() - 10.3e-18 * 0.4e-9).abs() < 1e-40);
    }
}
