#!/usr/bin/env bash
# Offline CI gate for the spinwave-repro workspace.
#
# Everything here must pass with no network access: the workspace is
# std-only and the proptest/criterion stand-ins are vendored in-tree
# (see DESIGN.md §7), so `--offline` is used throughout.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> release harness binaries (repro, parbench)"
cargo build --release --offline --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --workspace --offline

echo "==> magnum tests with MAGNUM_THREADS=4 (parallel field engine)"
MAGNUM_THREADS=4 cargo test -q -p magnum --offline

echo "==> demag bench smoke (one small grid, JSON emitter)"
./target/release/parbench --demag --grids 32 --evals 2 --threads 1,2 \
    --out target/BENCH_demag_smoke.json
test -s target/BENCH_demag_smoke.json

echo "==> bigfft bench smoke (composite-padded grid, bitwise identity asserted in JSON)"
./target/release/parbench --bigfft --grids 24x20 --evals 2 --threads 1,2 \
    --out target/BENCH_fft_smoke.json
grep -q '"bitwise_identical_to_serial":true' target/BENCH_fft_smoke.json
grep -q '"thread_scaling"' target/BENCH_fft_smoke.json
grep -q '"cpus"' target/BENCH_fft_smoke.json

echo "==> rhs bench smoke (asserts bitwise identity across threads and rel err <= 1e-12)"
./target/release/parbench --rhs --grids 32 --steps 10 --threads 1,2,4 \
    --out target/BENCH_rhs_smoke.json
test -s target/BENCH_rhs_smoke.json

echo "==> batch bench smoke (asserts batch/independent bitwise parity and >=1.5x at K=8)"
./target/release/parbench --batch --ks 1,4,8 --steps 100 \
    --out target/BENCH_batch_smoke.json
test -s target/BENCH_batch_smoke.json

echo "==> netlist compiler smoke (rca16/mul4/table cases, fan-out legality asserted)"
./target/release/parbench --netlist --patterns 2048 \
    --out target/BENCH_netlist_smoke.json
test -s target/BENCH_netlist_smoke.json
./target/release/repro compile --demo full_adder > target/compile_smoke.json
grep -q '"legal":true' target/compile_smoke.json

echo "==> swserve smoke (boot, healthz, one gate eval byte-checked, graceful shutdown)"
rm -f target/swserve.addr
./target/release/repro serve --addr 127.0.0.1:0 --addr-file target/swserve.addr \
    --workers 1 --queue-depth 8 --manifest target/swrun/ci-serve.manifest.jsonl &
SERVE_PID=$!
for _ in $(seq 1 50); do
    test -s target/swserve.addr && break
    sleep 0.1
done
test -s target/swserve.addr
./target/release/parbench --probe "$(cat target/swserve.addr)" --shutdown
wait "$SERVE_PID"

echo "==> swserve loadtest smoke (all scenarios: RAM, cold store, warm restart, router, shard kill)"
./target/release/parbench --serve --connections 8 --requests 16 \
    --scenarios hot,cold,restart,router,kill \
    --out target/BENCH_serve_smoke.json
test -s target/BENCH_serve_smoke.json
grep -q '"scenario":"kill"' target/BENCH_serve_smoke.json

echo "==> distributed serving smoke (router + 2 shards, cached repeat, SIGKILL failover, drain)"
rm -f target/shard0.addr target/shard1.addr target/router.addr
rm -rf target/ci-store0 target/ci-store1
./target/release/repro serve --addr 127.0.0.1:0 --addr-file target/shard0.addr \
    --workers 1 --store target/ci-store0 &
SHARD0_PID=$!
./target/release/repro serve --addr 127.0.0.1:0 --addr-file target/shard1.addr \
    --workers 1 --store target/ci-store1 &
SHARD1_PID=$!
for _ in $(seq 1 50); do
    test -s target/shard0.addr && test -s target/shard1.addr && break
    sleep 0.1
done
test -s target/shard0.addr && test -s target/shard1.addr
./target/release/repro route --addr 127.0.0.1:0 --addr-file target/router.addr \
    --backend "$(cat target/shard0.addr)" --backend "$(cat target/shard1.addr)" &
ROUTER_PID=$!
for _ in $(seq 1 50); do
    test -s target/router.addr && break
    sleep 0.1
done
test -s target/router.addr
# Through the router: healthz, eval, cached byte-identical repeat.
PROBE_OUT=$(./target/release/parbench --probe "$(cat target/router.addr)" --expect-cached)
echo "$PROBE_OUT"
# SIGKILL the shard that answered; the same eval must still get 200.
HOME_SHARD=$(printf '%s\n' "$PROBE_OUT" | sed -n 's/^eval served by shard //p')
if [ "$HOME_SHARD" = "0" ]; then
    KILL_PID=$SHARD0_PID; SURVIVOR_PID=$SHARD1_PID; SURVIVOR_ADDR=$(cat target/shard1.addr)
else
    KILL_PID=$SHARD1_PID; SURVIVOR_PID=$SHARD0_PID; SURVIVOR_ADDR=$(cat target/shard0.addr)
fi
kill -9 "$KILL_PID"
wait "$KILL_PID" 2>/dev/null || true
./target/release/parbench --probe "$(cat target/router.addr)" --expect-cached
# Drain the router, then the surviving shard.
./target/release/parbench --probe "$(cat target/router.addr)" --shutdown
wait "$ROUTER_PID"
./target/release/parbench --probe "$SURVIVOR_ADDR" --shutdown
wait "$SURVIVOR_PID"

echo "CI OK"
