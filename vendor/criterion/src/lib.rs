//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds with no network access (see the dependency
//! policy in the repository README), so the real criterion cannot be
//! fetched. This crate supplies the API subset the `bench` crate's
//! benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`]
//! — as a plain timing loop: no statistics, plots, or baselines, just a
//! warm-up call and a mean wall-time over a bounded number of
//! iterations, printed to stdout.
//!
//! Tuning: `CRITERION_STUB_MS` caps the measurement budget per benchmark
//! in milliseconds (default 300).

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; the stand-in runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_STUB_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.budget,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{id:<44} (no iterations recorded)");
        } else {
            let mean = bencher.elapsed / bencher.iterations;
            println!("{id:<44} {mean:>12.3?}/iter ({} iters)", bencher.iterations);
        }
        self
    }

    /// Starts a named benchmark group; ids are prefixed `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count is
    /// governed by the time budget, not a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; maps onto the stand-in's budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Runs one benchmark under the group's name prefix.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the budget is exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up call outside the measurement.
        black_box(routine());
        let start = Instant::now();
        let mut iterations = 0u32;
        loop {
            black_box(routine());
            iterations += 1;
            if start.elapsed() >= self.budget || iterations >= 100_000 {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iterations = 0u32;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
            if wall.elapsed() >= self.budget || iterations >= 100_000 {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = measured;
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn iter_records_iterations() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    mod as_macro_target {
        use super::super::*;

        fn bench_one(c: &mut Criterion) {
            c.bench_function("macro target", |b| b.iter(|| 2 * 2));
        }

        criterion_group!(benches, bench_one);

        #[test]
        fn group_runs() {
            benches();
        }
    }
}
