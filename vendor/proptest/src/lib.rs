//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in environments with **no network access** (see
//! the dependency policy in the repository README), so the real proptest
//! cannot be fetched from the registry. This crate implements the API
//! subset the workspace's property tests actually use — `proptest!`,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `Just`, numeric-range
//! and tuple strategies, `prop_filter_map`/`prop_map`/`prop_filter`,
//! `prop::array::uniform*` and `prop::collection::vec` — over a
//! deterministic SplitMix64 generator, entirely std-only.
//!
//! Semantics deliberately kept from the real crate:
//!
//! * Each `#[test]` inside `proptest!` runs `Config::cases` random cases
//!   (default 64, overridable with the `PROPTEST_CASES` environment
//!   variable or `#![proptest_config(ProptestConfig::with_cases(n))]`).
//! * `prop_assume!` and filtered-out samples reject the case and draw a
//!   fresh one, up to a global rejection budget.
//! * Failures panic with the formatted assertion message.
//!
//! Deliberately **not** implemented: shrinking, persisted failure seeds,
//! and the `Arbitrary` trait. The per-test seed derives from the test's
//! name, so runs are reproducible from one invocation to the next.

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// A generator seeded deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (`n = 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the tests use.

    use super::Rng;
    use std::ops::Range;

    /// A generator of random values. `new_value` returns `None` when the
    /// drawn sample was filtered out (the runner redraws).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value, or `None` if the draw was rejected.
        fn new_value(&self, rng: &mut Rng) -> Option<Self::Value>;

        /// Keeps only samples for which `f` returns `Some`, mapping them.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                source: self,
                f,
                whence,
            }
        }

        /// Maps every sample through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keeps only samples for which `f` returns true.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                f,
                whence,
            }
        }
    }

    /// Draws from `s`, redrawing up to `tries` times on rejection.
    pub fn sample<S: Strategy>(s: &S, rng: &mut Rng, tries: u32) -> Option<S::Value> {
        for _ in 0..tries {
            if let Some(v) = s.new_value(rng) {
                return Some(v);
            }
        }
        None
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut Rng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        branches: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// A union over the given branches.
        ///
        /// # Panics
        ///
        /// Panics if `branches` is empty.
        pub fn new(branches: Vec<S>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut Rng) -> Option<S::Value> {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        source: S,
        f: F,
        #[allow(dead_code)]
        whence: &'static str,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn new_value(&self, rng: &mut Rng) -> Option<O> {
            self.source.new_value(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut Rng) -> Option<O> {
            self.source.new_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        f: F,
        #[allow(dead_code)]
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut Rng) -> Option<S::Value> {
            self.source.new_value(rng).filter(|v| (self.f)(v))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut Rng) -> Option<f64> {
            Some(self.start + rng.next_f64() * (self.end - self.start))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut Rng) -> Option<$t> {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    Some((self.start as i128 + rng.below(span) as i128) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut Rng) -> Option<Self::Value> {
                    let ($($s,)+) = self;
                    $(let $v = $s.new_value(rng)?;)+
                    Some(($($v,)+))
                }
            }
        };
    }
    tuple_strategy!(S1 / v1);
    tuple_strategy!(S1 / v1, S2 / v2);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);
    tuple_strategy!(
        S1 / v1,
        S2 / v2,
        S3 / v3,
        S4 / v4,
        S5 / v5,
        S6 / v6,
        S7 / v7
    );
    tuple_strategy!(
        S1 / v1,
        S2 / v2,
        S3 / v3,
        S4 / v4,
        S5 / v5,
        S6 / v6,
        S7 / v7,
        S8 / v8
    );
}

pub mod array {
    //! Fixed-size array strategies (`prop::array::uniform*`).

    use super::strategy::Strategy;
    use super::Rng;

    /// `N` independent draws from one strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut Rng) -> Option<Self::Value> {
            let mut out = Vec::with_capacity(N);
            for _ in 0..N {
                out.push(self.element.new_value(rng)?);
            }
            out.try_into().ok()
        }
    }

    /// An array of 2 independent draws.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArrayStrategy<S, 2> {
        UniformArrayStrategy { element }
    }

    /// An array of 3 independent draws.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArrayStrategy<S, 3> {
        UniformArrayStrategy { element }
    }

    /// An array of 4 independent draws.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::Rng;
    use std::ops::Range;

    /// Inclusive-exclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    /// A vector of independent draws with random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy of `size` elements (a count or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut Rng) -> Option<Self::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.new_value(rng)?);
            }
            Some(out)
        }
    }
}

pub mod test_runner {
    //! Case configuration and the error type `prop_assert*` produce.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases each test must pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (`prop_assume!`) — redraw, don't fail.
        Reject(String),
        /// An assertion failed — the whole test fails.
        Fail(String),
    }

    /// Result type of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr);
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::Rng::from_name(::std::stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                'cases: while passed < config.cases {
                    if rejected > 10 * config.cases + 1000 {
                        ::std::panic!(
                            "proptest stand-in: too many rejected inputs in `{}` \
                             ({} rejects for {} passes)",
                            ::std::stringify!($name), rejected, passed
                        );
                    }
                    $(
                        let $arg = match $crate::strategy::sample(&$strat, &mut rng, 100) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                rejected += 1;
                                continue 'cases;
                            }
                        };
                    )*
                    let outcome: $crate::test_runner::TestCaseResult =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => rejected += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => ::std::panic!(
                            "proptest case {} of `{}` failed: {}",
                            passed, ::std::stringify!($name), message
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Written without `!` so callers asserting partial-ord
        // comparisons don't trip `neg_cmp_op_on_partial_ord`.
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case if both operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (redraw) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::ToString::to_string(::std::stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec::Vec::from([$($branch),+]))
    };
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// `prop::array::...` / `prop::collection::...` paths, as in the
    /// real crate's prelude (which re-exports the crate root as `prop`).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::Rng::new(1);
        for _ in 0..1000 {
            let x = crate::strategy::sample(&(2.0f64..3.0), &mut rng, 1).unwrap();
            assert!((2.0..3.0).contains(&x));
            let n = crate::strategy::sample(&(5u32..9), &mut rng, 1).unwrap();
            assert!((5..9).contains(&n));
        }
    }

    #[test]
    fn union_draws_every_branch() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::Rng::new(7);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::strategy::sample(&s, &mut rng, 1).unwrap() as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn filter_map_rejects_and_maps() {
        let s =
            (0u32..10).prop_filter_map(
                "even only",
                |n| {
                    if n % 2 == 0 {
                        Some(n * 100)
                    } else {
                        None
                    }
                },
            );
        let mut rng = crate::Rng::new(3);
        for _ in 0..100 {
            let v = crate::strategy::sample(&s, &mut rng, 100).unwrap();
            assert_eq!(v % 200, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = prop::collection::vec(0u32..5, 2..6);
        let mut rng = crate::Rng::new(11);
        for _ in 0..100 {
            let v = crate::strategy::sample(&s, &mut rng, 1).unwrap();
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn uniform_array_has_fixed_len() {
        let s = prop::array::uniform3(0u32..4);
        let mut rng = crate::Rng::new(13);
        let arr = crate::strategy::sample(&s, &mut rng, 1).unwrap();
        assert_eq!(arr.len(), 3);
    }

    // The macro must accept the same shapes the workspace tests use.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and multiple args parse.
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4, "assume should have filtered {}", x);
        }

        #[test]
        fn tuples_and_filters_compose(
            v in (0.0f64..1.0, 0.0f64..1.0).prop_filter_map("sum < 1", |(a, b)| {
                if a + b < 1.0 { Some(a + b) } else { None }
            }),
        ) {
            prop_assert!(v < 1.0);
        }
    }
}
