//! Quickstart: build the paper's triangle MAJ3 gate, evaluate one input
//! pattern on the fast analytic backend, and inspect both outputs.
//!
//! Run with `cargo run --example quickstart`.

use swgates::prelude::*;

fn main() -> Result<(), SwGateError> {
    // The paper's §IV-A gate: λ = 55 nm, FeCoB film, d1..d4 per Fig. 3.
    let gate = Maj3Gate::paper();
    let backend = AnalyticBackend::paper();

    println!("Fan-out of 2 triangle MAJ3 gate (DATE 2021 reproduction)");
    println!(
        "operating point: λ = {:.0} nm, f = {:.2} GHz, v_g = {:.0} m/s, L_att = {:.2} µm",
        backend.operating_point().wavelength() * 1e9,
        backend.operating_point().frequency() / 1e9,
        backend.operating_point().group_velocity(),
        backend.operating_point().attenuation_length() * 1e6,
    );

    let inputs = [Bit::One, Bit::Zero, Bit::One];
    let out = gate.evaluate(&backend, inputs)?;
    println!(
        "\ninputs (I1, I2, I3) = ({}, {}, {})",
        inputs[0], inputs[1], inputs[2]
    );
    println!(
        "O1: normalized amplitude {:.3}, phase {:+.3} rad  ->  logic {}",
        out.o1.normalized, out.o1.phase, out.o1.bit
    );
    println!(
        "O2: normalized amplitude {:.3}, phase {:+.3} rad  ->  logic {}",
        out.o2.normalized, out.o2.phase, out.o2.bit
    );
    assert_eq!(out.o1.bit, Bit::majority(inputs[0], inputs[1], inputs[2]));
    assert!(out.fanout_consistent(), "both outputs must agree (FO2)");
    println!(
        "\nfan-out of 2 verified: both outputs carry MAJ(I1, I2, I3) = {}",
        out.o1.bit
    );
    Ok(())
}
