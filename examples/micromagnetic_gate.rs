//! The MuMax3-style validation (§IV-B): a full LLG simulation of one
//! triangle-gate input pattern, with an ASCII rendering of the m_x field
//! (the raw material behind the paper's Fig. 5 colour maps).
//!
//! Usage:
//!   cargo run --release --example micromagnetic_gate            # mini MAJ3, inputs 110
//!   cargo run --release --example micromagnetic_gate -- 101     # other pattern
//!   cargo run --release --example micromagnetic_gate -- 101 --paper  # full-size gate (slow)
//!   cargo run --release --example micromagnetic_gate -- 10 --xor     # XOR gate

use swgates::prelude::*;

fn parse_bits(s: &str) -> Vec<Bit> {
    s.chars()
        .filter_map(|c| match c {
            '0' => Some(Bit::Zero),
            '1' => Some(Bit::One),
            _ => None,
        })
        .collect()
}

fn main() -> Result<(), SwGateError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let xor_mode = args.iter().any(|a| a == "--xor");
    let paper_size = args.iter().any(|a| a == "--paper");
    let pattern = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| parse_bits(s))
        .unwrap_or_else(|| {
            if xor_mode {
                vec![Bit::One, Bit::Zero]
            } else {
                vec![Bit::One, Bit::One, Bit::Zero]
            }
        });

    let backend = MumagBackend::fast();
    println!(
        "micromagnetic backend: {} nm cells, drive f for λ=55 nm: {:.2} GHz",
        backend.cell() * 1e9,
        backend.drive_frequency(55e-9) / 1e9
    );

    let run = if xor_mode {
        let layout = if paper_size {
            TriangleXorLayout::paper()
        } else {
            TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9)?
        };
        let bits = [pattern[0], pattern[1]];
        println!("running XOR gate, inputs ({}, {}) ...", bits[0], bits[1]);
        backend.xor_run(&layout, bits)?
    } else {
        let layout = if paper_size {
            TriangleMaj3Layout::paper()
        } else {
            TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1)?
        };
        let bits = [
            pattern[0],
            pattern[1],
            pattern.get(2).copied().unwrap_or(Bit::Zero),
        ];
        println!(
            "running MAJ3 gate, inputs ({}, {}, {}) ...",
            bits[0], bits[1], bits[2]
        );
        backend.maj3_run(&layout, bits)?
    };

    println!(
        "simulated {:.2} ns at {:.2} GHz; |O1| = {:.4e}, |O2| = {:.4e}, \
         phases {:+.2} / {:+.2} rad",
        run.simulated_time * 1e9,
        run.frequency / 1e9,
        run.o1.abs(),
        run.o2.abs(),
        run.o1.arg(),
        run.o2.arg()
    );

    // Fig. 5-style field map: m_x at the end of the run (dark = negative,
    // bright = positive; the paper's blue/red).
    let snapshot = run.snapshot;
    let scale = snapshot.max().max(-snapshot.min());
    println!("\nm_x field map (scale ±{scale:.3e}):");
    println!("{}", snapshot.to_ascii(scale));
    Ok(())
}
