//! The §IV-A design flow: from film parameters to gate dimensions.
//!
//! "The spin wave wavelength is chosen to be 55 nm ... Once the
//! wavelength is determined, the dimensions of the device can be
//! calculated ... from the SW dispersion relation ... a SW frequency was
//! determined."
//!
//! Run with `cargo run --example dispersion_design`.

use swgates::layout::{TriangleMaj3Layout, TriangleXorLayout};
use swgates::op::OperatingPoint;
use swphys::attenuation::Attenuation;
use swphys::dispersion::FvmswDispersion;
use swphys::film::PerpendicularFilm;
use swphys::waveguide::{EdgePinning, WaveguideDispersion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: the film (§IV-A material parameters).
    let film = PerpendicularFilm::fecob(1e-9);
    println!("Fe60Co20B20 film, 1 nm thick:");
    println!(
        "  anisotropy field    {:.0} kA/m",
        film.anisotropy_field() / 1e3
    );
    println!(
        "  internal field      {:.0} kA/m",
        film.internal_field() / 1e3
    );
    println!("  out-of-plane stable {}", film.is_stable());
    println!(
        "  FMR frequency       {:.2} GHz",
        film.fmr_frequency() / 1e9
    );
    assert!(film.is_stable(), "FVMSWs need a perpendicular film");

    // Step 2: dispersion and the operating point at λ = 55 nm.
    let dispersion = FvmswDispersion::for_film(&film);
    println!("\nKalinikos–Slavin dispersion f(λ):");
    for lambda_nm in [200.0, 125.0, 100.0, 80.0, 55.0, 40.0] {
        let f = dispersion.frequency_for_wavelength(lambda_nm * 1e-9);
        println!("  λ = {lambda_nm:>5.0} nm -> f = {:>6.2} GHz", f / 1e9);
    }
    let op = OperatingPoint::paper()?;
    println!(
        "\noperating point: λ = 55 nm, f = {:.2} GHz, k = {:.1} rad/µm, v_g = {:.0} m/s",
        op.frequency() / 1e9,
        op.wavenumber() / 1e6,
        op.group_velocity()
    );
    println!(
        "(the paper quotes 10 GHz with k = 50 rad/µm; note 2π/55 nm = 114 rad/µm — see \
         EXPERIMENTS.md)"
    );

    // Step 3: check the paper's loss assumption.
    let att = Attenuation::for_mode(&dispersion, op.wavenumber(), film.alpha());
    println!(
        "\nattenuation: τ = {:.2} ns, L_att = {:.2} µm (gate paths are ≤ {:.2} µm -> \
         assumption (iv) holds)",
        att.lifetime() * 1e9,
        att.decay_length() * 1e6,
        TriangleMaj3Layout::paper().path_i1() * 1e6
    );

    // Step 4: waveguide mode structure (w ≤ λ rule).
    let guide = WaveguideDispersion::new(dispersion, 50e-9, EdgePinning::PartiallyPinned)?;
    println!(
        "\n50 nm waveguide (partially pinned edges): n=1 cutoff {:.2} GHz, n=2 cutoff {:.2} GHz",
        guide.cutoff_frequency(1) / 1e9,
        guide.cutoff_frequency(2) / 1e9
    );
    println!(
        "single-mode at the operating frequency: {}",
        guide.single_mode_at(op.frequency())
    );

    // Step 5: the gate dimensions fall out of λ (§III-A design rules).
    let maj = TriangleMaj3Layout::paper();
    let xor = TriangleXorLayout::paper();
    println!("\nMAJ3 dimensions (all n·λ): d1 = {:.0} nm (6λ), d2 = {:.0} nm (16λ), d3 = {:.0} nm (4λ), d4 = {:.0} nm (1λ)",
        maj.d1() * 1e9, maj.d2() * 1e9, maj.d3() * 1e9, maj.d4() * 1e9);
    println!(
        "input paths: I1 = {:.0}λ, I2 = {:.0}λ, I3 = {:.0}λ — integer multiples ⇒ constructive",
        maj.path_i1() / maj.wavelength(),
        maj.path_i2() / maj.wavelength(),
        maj.path_i3() / maj.wavelength()
    );
    println!(
        "XOR dimensions: d1 = {:.0} nm (6λ), stub d2 = {:.0} nm (as small as possible, §III-B)",
        xor.d1() * 1e9,
        xor.d2() * 1e9
    );
    Ok(())
}
