//! Circuit-level demonstration of the fan-out of 2: the full adder of
//! §II-B ("the Full Adder carry out is computed as a 3-input majority")
//! and a ripple-carry adder whose interior carries each drive exactly
//! two next-stage gates — the scenario the paper's FO2 gates exist for.
//!
//! Run with `cargo run --example full_adder`.

use swgates::circuit::Circuit;
use swgates::encoding::{all_patterns, Bit};
use swperf::circuit_cost::{fanout2_cost, fanout_advantage};
use swperf::mecell::MeCell;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Full adder: sum = a ⊕ b ⊕ cin, carry = MAJ3(a, b, cin) -----------
    let fa = Circuit::full_adder();
    println!("{fa}");
    println!("a b cin | sum carry");
    for p in all_patterns::<3>() {
        let out = fa.evaluate(&p)?;
        println!("{} {}  {}  |  {}    {}", p[0], p[1], p[2], out[0], out[1]);
        let total = p.iter().map(|b| b.as_u8() as usize).sum::<usize>();
        assert_eq!(out[0].as_u8() as usize, total % 2);
        assert_eq!(out[1].as_u8() as usize, total / 2);
    }

    let me = MeCell::paper();
    let cost = fanout2_cost(&fa, &me);
    println!(
        "\nfull adder cost (triangle gates): {:.2} aJ, {:.2} ns, {} transducers\n",
        cost.energy_aj(),
        cost.delay_ns(),
        cost.transducers
    );

    // ---- Ripple-carry adder: the fan-out payoff ----------------------------
    println!("ripple-carry adders — FO2 triangle gates vs replicated single-output gates:");
    println!("bits |   FO2 energy | replicated | saving");
    for n in [4, 8, 16, 32] {
        let adder = Circuit::ripple_carry_adder(n);
        assert!(
            adder.fanout_violations().is_empty(),
            "FO2 suffices by construction"
        );
        let (fo2, rep, saving) = fanout_advantage(&adder, &me);
        println!(
            "{n:>4} | {:>9.1} aJ | {:>7.1} aJ | {:>5.1}%",
            fo2.energy_aj(),
            rep.energy_aj(),
            saving * 100.0
        );
    }

    // Sanity: a 32-bit add.
    let adder = Circuit::ripple_carry_adder(32);
    let a: u64 = 0xDEAD_BEEF;
    let b: u64 = 0x0BAD_F00D;
    let mut inputs = Vec::new();
    for i in 0..32 {
        inputs.push(Bit::from_bool(a >> i & 1 == 1));
    }
    for i in 0..32 {
        inputs.push(Bit::from_bool(b >> i & 1 == 1));
    }
    inputs.push(Bit::Zero);
    let out = adder.evaluate(&inputs)?;
    let mut sum = 0u64;
    for (i, bit) in out.iter().enumerate() {
        sum |= (bit.as_u8() as u64) << i;
    }
    assert_eq!(sum, a + b);
    println!("\n32-bit add check: {a:#x} + {b:#x} = {sum:#x} ✓");
    Ok(())
}
