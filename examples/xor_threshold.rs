//! Regenerates the paper's Table II (FO2 XOR normalized output
//! magnetization), sweeps the detection threshold to show why 0.5 is the
//! right choice (§IV-C), and demonstrates the XNOR polarity flip.
//!
//! Run with `cargo run --example xor_threshold`.

use swgates::detect::{Polarity, ThresholdDetector};
use swgates::encoding::all_patterns;
use swgates::prelude::*;

fn main() -> Result<(), SwGateError> {
    let backend = AnalyticBackend::paper();
    let gate = XorGate::paper();

    // ---- Table II analogue -------------------------------------------------
    let table = gate.truth_table(&backend)?;
    println!(
        "{}",
        table.render("Table II analogue — FO2 XOR normalized output magnetization")
    );
    table.verify(|p| Bit::xor(p[0], p[1]))?;

    // ---- Threshold margin analysis -----------------------------------------
    let strong = table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]);
    let weak = table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]);
    println!(
        "equal-input amplitudes ≥ {strong:.3}, unequal-input ≤ {weak:.3e} — any threshold in \
         ({weak:.3}, {strong:.3}) decodes XOR; the paper picks 0.5\n"
    );

    println!("threshold sweep (fraction of patterns decoded correctly):");
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let detector = ThresholdDetector::new(threshold, Polarity::Xor).with_margin(0.0);
        let sweep_gate = XorGate::paper().with_detector(detector);
        let mut correct = 0;
        for p in all_patterns::<2>() {
            if let Ok(out) = sweep_gate.evaluate(&backend, p) {
                if out.o1.bit == Bit::xor(p[0], p[1]) && out.o2.bit == out.o1.bit {
                    correct += 1;
                }
            }
        }
        println!("  threshold {threshold:.1}: {correct}/4 correct");
    }

    // ---- XNOR: the flipped condition ---------------------------------------
    let xnor = XnorGate::paper();
    println!("\nXNOR (flipped threshold condition):");
    for p in all_patterns::<2>() {
        let out = xnor.evaluate(&backend, p)?;
        println!("  {} {} -> {}", p[0], p[1], out.o1.bit);
        assert_eq!(out.o1.bit, !Bit::xor(p[0], p[1]));
    }
    Ok(())
}
