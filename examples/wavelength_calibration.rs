//! Numerical dispersion spectroscopy: measures the simulated wavelength
//! in a straight waveguide at several drive frequencies and compares it
//! against the discrete dispersion relation the gate backend designs
//! with — the calibration that underpins the §III-A `n·λ` rules.
//!
//! Run with `cargo run --release --example wavelength_calibration`.

use std::f64::consts::PI;

use magnum::excitation::{Antenna, Drive};
use magnum::material::Material;
use magnum::math::Vec3;
use magnum::mesh::Mesh;
use magnum::probe::{Component, DftProbe, RegionProbe};
use magnum::sim::Simulation;
use swgates::prelude::*;

/// Measures λ at `frequency` from the phase slope between two probes.
fn measure_wavelength(
    backend: &MumagBackend,
    frequency: f64,
    lambda_expected: f64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let cell = backend.cell();
    let nx = 200;
    let ny = 4;
    let mesh = Mesh::new(nx, ny, [cell, cell, 1e-9])?;
    let width = ny as f64 * cell;
    let antenna = Antenna::over_rect(
        &mesh,
        8.0 * cell,
        0.0,
        10.0 * cell,
        width,
        Vec3::X,
        Drive::logic_cw(3e3, frequency, 0.0),
    );
    let mut sim = Simulation::builder(mesh, Material::fecob())
        .antenna(antenna)
        .build()?;

    let x1 = 60.0 * cell;
    let separation = (4.0 * lambda_expected / cell).round() * cell;
    let x2 = x1 + separation;
    let region = |x: f64| {
        RegionProbe::over_rect(
            sim.mesh(),
            x - cell * 0.6,
            0.0,
            x + cell * 0.6,
            width,
            Component::X,
        )
    };
    let mut p1 = DftProbe::new(region(x1), frequency);
    let mut p2 = DftProbe::new(region(x2), frequency);

    let period = 1.0 / frequency;
    sim.run(2.5e-9)?;
    sim.run_sampled(4.0 * period, period / 32.0, |t, s| {
        p1.sample(t, s.magnetization());
        p2.sample(t, s.magnetization());
    })?;

    // Unwrap the phase difference knowing the approximate turn count.
    let raw = p1.phase() - p2.phase();
    let nominal = 2.0 * PI * separation / lambda_expected;
    let wraps = ((nominal - raw) / (2.0 * PI)).round();
    let k = (raw + wraps * 2.0 * PI) / separation;
    Ok(2.0 * PI / k)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = MumagBackend::fast();
    println!(
        "straight-waveguide dispersion spectroscopy ({}x{} nm cells)\n",
        6.875, 6.875
    );
    println!(
        "{:>10}  {:>12}  {:>12}  {:>7}",
        "f (GHz)", "λ design", "λ measured", "error"
    );
    for lambda_design in [82.5e-9, 68.75e-9, 55e-9] {
        let f = backend.drive_frequency(lambda_design);
        let measured = measure_wavelength(&backend, f, lambda_design)?;
        let err = (measured - lambda_design).abs() / lambda_design;
        println!(
            "{:>10.2}  {:>9.2} nm  {:>9.2} nm  {:>6.2}%",
            f / 1e9,
            lambda_design * 1e9,
            measured * 1e9,
            err * 100.0
        );
    }
    println!(
        "\nthe backend drives every gate at the frequency its *discrete* dispersion\n\
         assigns to the layout's λ, so the n·λ interference rules hold on the mesh \n\
         (see swgates::mumag docs for the lattice-anisotropy compensation)."
    );
    Ok(())
}
