//! Regenerates the paper's Table I (normalized output magnetization of
//! the FO2 MAJ3 gate for all 8 input patterns) on the analytic backend,
//! verifies the fan-out equivalence of O1 and O2, and demonstrates the
//! derived (N)AND/(N)OR gates of §III-A.
//!
//! Run with `cargo run --example majority_truth_table`.

use swgates::encoding::all_patterns;
use swgates::prelude::*;

fn main() -> Result<(), SwGateError> {
    let backend = AnalyticBackend::paper();

    // ---- Table I analogue -------------------------------------------------
    let gate = Maj3Gate::paper();
    let table = gate.truth_table(&backend)?;
    println!(
        "{}",
        table.render("Table I analogue — FO2 MAJ3 normalized output magnetization")
    );
    table.verify(|p| Bit::majority(p[0], p[1], p[2]))?;
    println!(
        "majority verified on all 8 patterns; max O1/O2 mismatch = {:.2e}\n",
        table.max_fanout_mismatch()
    );

    // ---- The ladder baseline computes the same function -------------------
    let ladder = LadderMaj3Gate::paper();
    let ladder_table = ladder.truth_table(&backend)?;
    ladder_table.verify(|p| Bit::majority(p[0], p[1], p[2]))?;
    println!(
        "ladder baseline [23] agrees logically (at {} transducers vs {} for the triangle)\n",
        ladder.layout().excitation_cells() + ladder.layout().detection_cells(),
        5
    );

    // ---- Derived gates: I3 as control input -------------------------------
    let and = AndGate::paper()?;
    let or = OrGate::paper()?;
    let nand = NandGate::paper()?;
    let nor = NorGate::paper()?;
    println!("derived 2-input gates (I3 pinned; inverting variants use d4 + λ/2):");
    println!("a b | AND OR NAND NOR");
    for p in all_patterns::<2>() {
        println!(
            "{} {} |  {}   {}   {}    {}",
            p[0],
            p[1],
            and.evaluate(&backend, p)?.o1.bit,
            or.evaluate(&backend, p)?.o1.bit,
            nand.evaluate(&backend, p)?.o1.bit,
            nor.evaluate(&backend, p)?.o1.bit,
        );
    }
    Ok(())
}
