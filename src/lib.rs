//! # spinwave-repro — umbrella crate
//!
//! Reproduction of *"Fan-out of 2 Triangle Shape Spin Wave Logic Gates"*
//! (Mahmoud et al., DATE 2021). This crate re-exports the workspace
//! members so examples and integration tests can use one coherent API:
//!
//! * [`magnum`] — the micromagnetic (LLG) solver substrate.
//! * [`swphys`] — analytic spin-wave physics (dispersion, attenuation).
//! * [`swgates`] — the paper's triangle-shape fan-out-of-2 gates.
//! * [`swperf`] — the energy/delay performance model (Table III).
//! * [`swrun`] — parallel batch execution with run manifests and
//!   checkpoint/resume (drives the micromagnetic experiments).
//! * [`swjson`] — the shared std-only JSON value/writer/parser used by
//!   manifests and HTTP bodies.
//! * [`swnet`] — the netlist IR and MAJ-synthesis compiler: truth
//!   tables and structural netlists to fan-out-legal, energy/delay
//!   scored circuits (`repro compile`).
//! * [`swserve`] — the gate-evaluation HTTP service (`repro serve`)
//!   with coalescing, content-addressed caching, and backpressure.
//! * [`swstore`] — the disk-backed content-addressed result store
//!   behind `repro serve --store`: crash-safe append-only segments,
//!   CRC-checked records, LRU compaction, manifest pre-warm.
//! * [`swrouter`] — the consistent-hash shard router (`repro route`)
//!   spreading request keys across swserve processes with cache
//!   affinity, keep-alive pools, and failover.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use magnum;
pub use swgates;
pub use swjson;
pub use swnet;
pub use swperf;
pub use swphys;
pub use swrouter;
pub use swrun;
pub use swserve;
pub use swstore;
