//! Cross-crate integration tests: the analytic gate stack end to end
//! (layout rules → operating point → interference model → detection →
//! truth tables → performance model).

use swgates::encoding::{all_patterns, Bit};
use swgates::prelude::*;
use swperf::compare::Comparison;
use swperf::swcost::SwGateKind;

#[test]
fn table_i_shape_holds_on_the_analytic_backend() {
    let table = Maj3Gate::paper()
        .truth_table(&AnalyticBackend::paper())
        .expect("analytic evaluation succeeds");
    table
        .verify(|p| Bit::majority(p[0], p[1], p[2]))
        .expect("majority function");
    assert!(table.fanout_consistent());
    assert!(table.max_fanout_mismatch() < 1e-12, "O1 and O2 identical");
    for row in table.rows() {
        let unanimous = row.inputs.iter().all(|&b| b == row.inputs[0]);
        if unanimous {
            assert!((row.outputs.o1.normalized - 1.0).abs() < 1e-9);
        } else {
            // The paper's minority rows are 0.083-0.164; ours are
            // suppressed below 0.5 (shape, not absolute values).
            assert!(
                row.outputs.o1.normalized < 0.5,
                "minority {:?} too strong: {}",
                row.inputs,
                row.outputs.o1.normalized
            );
        }
    }
}

#[test]
fn table_ii_shape_holds_on_the_analytic_backend() {
    let table = XorGate::paper()
        .truth_table(&AnalyticBackend::paper())
        .expect("analytic evaluation succeeds");
    table
        .verify(|p| Bit::xor(p[0], p[1]))
        .expect("xor function");
    // Equal inputs: ~1 (paper: 0.99/1); unequal: ~0 (paper: ≈0).
    assert!(table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]) > 0.95);
    assert!(table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]) < 0.05);
}

#[test]
fn all_derived_gates_realize_their_functions() {
    let backend = AnalyticBackend::paper();
    let and = AndGate::paper().expect("layout");
    let or = OrGate::paper().expect("layout");
    let nand = NandGate::paper().expect("layout");
    let nor = NorGate::paper().expect("layout");
    let xnor = XnorGate::paper();
    for p in all_patterns::<2>() {
        let (a, b) = (p[0].as_bool(), p[1].as_bool());
        assert_eq!(and.evaluate(&backend, p).unwrap().o1.bit.as_bool(), a && b);
        assert_eq!(or.evaluate(&backend, p).unwrap().o1.bit.as_bool(), a || b);
        assert_eq!(
            nand.evaluate(&backend, p).unwrap().o1.bit.as_bool(),
            !(a && b)
        );
        assert_eq!(
            nor.evaluate(&backend, p).unwrap().o1.bit.as_bool(),
            !(a || b)
        );
        assert_eq!(xnor.evaluate(&backend, p).unwrap().o1.bit.as_bool(), a == b);
    }
}

#[test]
fn triangle_and_ladder_agree_while_triangle_is_cheaper() {
    let backend = AnalyticBackend::paper();
    let triangle = Maj3Gate::paper().truth_table(&backend).unwrap();
    let ladder = LadderMaj3Gate::paper().truth_table(&backend).unwrap();
    for (t, l) in triangle.rows().iter().zip(ladder.rows().iter()) {
        assert_eq!(t.outputs.o1.bit, l.outputs.o1.bit, "{:?}", t.inputs);
    }
    // The whole point: same function at 25% lower energy.
    let tri = SwGateKind::TriangleMaj3.paper_cost();
    let lad = SwGateKind::LadderMaj3.paper_cost();
    assert!((1.0 - tri.energy() / lad.energy() - 0.25).abs() < 1e-9);
}

#[test]
fn table_iii_rows_match_the_paper_exactly() {
    let t = Comparison::paper();
    // Paper Table III (energy aJ, delay ns, cells).
    let expect = [
        (t.cmos16_maj, 466.0, 0.03, 16),
        (t.cmos16_xor, 303.0, 0.03, 8),
        (t.cmos7_maj, 16.4, 0.02, 16),
        (t.cmos7_xor, 5.4, 0.01, 8),
        (t.sw_prior_maj, 13.76, 0.42, 6),
        (t.sw_prior_xor, 13.76, 0.42, 6),
        (t.this_work_maj, 10.32, 0.42, 5),
        (t.this_work_xor, 6.88, 0.42, 4),
    ];
    for (cost, energy_aj, delay_ns, cells) in expect {
        assert!(
            (cost.energy_aj() - energy_aj).abs() < 0.05,
            "energy {} != {energy_aj}",
            cost.energy_aj()
        );
        assert!((cost.delay_ns() - delay_ns).abs() < 0.01);
        assert_eq!(cost.device_count(), cells);
    }
}

#[test]
fn abstract_ratio_claims_hold() {
    let r = Comparison::paper().ratios();
    // "energy reduction of 25%-50% in comparison to the other 2-output
    // spin-wave devices while having the same delay"
    assert!(r.energy_saving_vs_sw_maj >= 0.249 && r.energy_saving_vs_sw_xor <= 0.501);
    // "energy reduction of 43x-0.8x when compared to the 16 nm and 7 nm
    // CMOS counterparts"
    assert!(r.energy_reduction_vs_cmos16_xor > 40.0);
    assert!(r.energy_reduction_vs_cmos7_xor < 1.0);
    // "delay overhead of 11x-40x"
    assert!(r.delay_overhead_vs_cmos16_maj > 10.0);
    assert!(r.delay_overhead_vs_cmos7_xor < 45.0);
}

#[test]
fn operating_point_supports_the_paper_assumptions() {
    let op = OperatingPoint::paper().expect("paper film is valid");
    let layout = TriangleMaj3Layout::paper();
    // Assumption (iv): propagation loss negligible. Longest path loses
    // less than half its amplitude.
    let worst = op.decay_over(layout.path_i1());
    assert!(worst > 0.5, "attenuation over the longest path: {worst}");
    // The non-reciprocity-free FVMSW band: drive well above FMR.
    assert!(op.frequency() > op.film().fmr_frequency());
}

#[test]
fn undecodable_conditions_surface_as_errors() {
    // A threshold detector with a huge margin cannot decode mid-range
    // amplitudes; the error must propagate, not panic.
    let gate = XorGate::paper().with_detector(
        swgates::detect::ThresholdDetector::new(0.5, swgates::detect::Polarity::Xor)
            .with_margin(0.6),
    );
    let result = gate.evaluate(&AnalyticBackend::paper(), [Bit::Zero, Bit::Zero]);
    assert!(matches!(result, Err(SwGateError::Undecodable { .. })));
}

#[test]
fn inverting_stub_produces_the_nmaj_gate_end_to_end() {
    let layout = TriangleMaj3Layout::new(55e-9, 50e-9, 330e-9, 880e-9, 220e-9, 82.5e-9).unwrap();
    assert!(layout.inverting_output());
    let gate = Maj3Gate::new(layout);
    let table = gate.truth_table(&AnalyticBackend::paper()).unwrap();
    table
        .verify(|p| !Bit::majority(p[0], p[1], p[2]))
        .expect("inverted majority");
}
