//! Physics validation of the solver substrate against analytic theory:
//! measured wavelengths vs the discrete dispersion, analytic (swphys) vs
//! numerical (magnum) cross-checks, and demag-model consistency.

use std::f64::consts::PI;

use magnum::excitation::{Antenna, Drive};
use magnum::field::demag::DemagMethod;
use magnum::material::Material;
use magnum::math::Vec3;
use magnum::mesh::Mesh;
use magnum::probe::{Component, DftProbe, RegionProbe};
use magnum::sim::Simulation;
use swgates::prelude::*;
use swphys::dispersion::FvmswDispersion;
use swphys::film::PerpendicularFilm;

/// Drives a straight waveguide at the backend's frequency for λ = 55 nm
/// and measures the wavelength from the phase difference between two
/// probes a known distance apart.
#[test]
fn measured_wavelength_matches_the_discrete_dispersion() {
    let backend = MumagBackend::fast();
    let lambda_target = 55e-9;
    let f = backend.drive_frequency(lambda_target);
    let cell = backend.cell();

    let nx = 160;
    let ny = 4;
    let mesh = Mesh::new(nx, ny, [cell, cell, 1e-9]).expect("mesh");
    let width = ny as f64 * cell;
    let antenna = Antenna::over_rect(
        &mesh,
        8.0 * cell,
        0.0,
        10.0 * cell,
        width,
        Vec3::X,
        Drive::logic_cw(3e3, f, 0.0),
    );
    let mut sim = Simulation::builder(mesh, Material::fecob())
        .antenna(antenna)
        .build()
        .expect("build");

    // Probe pair separated by exactly 4 λ-targets along the guide.
    let x1 = 60.0 * cell;
    let separation_cells = (4.0 * lambda_target / cell).round();
    let x2 = x1 + separation_cells * cell;
    let region = |x: f64| {
        RegionProbe::over_rect(
            sim.mesh(),
            x - cell * 0.6,
            0.0,
            x + cell * 0.6,
            width,
            Component::X,
        )
    };
    let mut p1 = DftProbe::new(region(x1), f);
    let mut p2 = DftProbe::new(region(x2), f);

    // Let the front pass both probes, then measure 4 periods.
    let period = 1.0 / f;
    sim.run(2.0e-9).expect("settle");
    sim.run_sampled(4.0 * period, period / 32.0, |t, s| {
        p1.sample(t, s.magnetization());
        p2.sample(t, s.magnetization());
    })
    .expect("measure");

    assert!(p1.amplitude() > 1e-6, "no wave at probe 1");
    assert!(p2.amplitude() > 1e-6, "no wave at probe 2");
    // Phase difference over the separation gives k directly.
    let dphi = {
        let raw = p1.phase() - p2.phase();
        // The wave travels +x: probe 2 lags. Unwrap knowing the expected
        // count of whole turns (separation = 4λ ⇒ 8π nominal).
        let nominal = 2.0 * PI * separation_cells * cell / lambda_target;
        let wraps = ((nominal - raw) / (2.0 * PI)).round();
        raw + wraps * 2.0 * PI
    };
    let k_measured = dphi / (separation_cells * cell);
    let lambda_measured = 2.0 * PI / k_measured;
    let err = (lambda_measured - lambda_target).abs() / lambda_target;
    assert!(
        err < 0.05,
        "measured λ = {:.2} nm vs target 55 nm (err {:.1}%)",
        lambda_measured * 1e9,
        err * 100.0
    );
}

#[test]
fn analytic_and_discrete_dispersions_agree_at_long_wavelengths() {
    // For λ ≫ Δ the lattice correction vanishes; the local-demag discrete
    // relation and the Kalinikos–Slavin relation then differ only by the
    // dipolar form factor F(kd), which is small for a 1 nm film.
    let film = PerpendicularFilm::fecob(1e-9);
    let ks = FvmswDispersion::for_film(&film);
    let backend = MumagBackend::fast();
    for lambda in [400e-9, 200e-9] {
        let f_ks = ks.frequency_for_wavelength(lambda);
        let f_disc = backend.drive_frequency(lambda);
        let rel = (f_ks - f_disc).abs() / f_ks;
        assert!(
            rel < 0.10,
            "λ = {lambda:e}: KS {f_ks:e} vs discrete {f_disc:e} ({rel:.3})"
        );
    }
}

#[test]
fn newell_demag_relaxes_a_film_like_the_local_model() {
    // A uniformly out-of-plane film under both demag models stays
    // out-of-plane (Ku wins); the Newell path must agree with the local
    // limit on the equilibrium.
    for method in [DemagMethod::ThinFilmLocal, DemagMethod::NewellFft] {
        let mesh = Mesh::new(32, 32, [5e-9, 5e-9, 1e-9]).expect("mesh");
        let mut sim = Simulation::builder(mesh, Material::fecob())
            .demag(method)
            .uniform_magnetization(Vec3::new(0.05, 0.0, 1.0))
            .build()
            .expect("build");
        sim.run(50e-12).expect("run");
        let mz = sim.magnetization_mean().z;
        assert!(mz > 0.99, "{method:?}: film fell over, mz = {mz}");
    }
}

#[test]
fn energy_decays_monotonically_without_drive() {
    let mesh = Mesh::new(24, 8, [5e-9, 5e-9, 1e-9]).expect("mesh");
    let mut sim = Simulation::builder(mesh, Material::fecob())
        .uniform_magnetization(Vec3::new(0.4, 0.1, 1.0))
        .build()
        .expect("build");
    let mut last = sim.total_energy();
    for _ in 0..20 {
        sim.run(2e-12).expect("run");
        let e = sim.total_energy();
        assert!(
            e <= last + last.abs() * 1e-9,
            "energy increased without drive: {last} -> {e}"
        );
        last = e;
    }
}

#[test]
fn group_velocity_consistency_between_crates() {
    // swphys (continuum KS) and the mumag discrete relation should give
    // group velocities within ~30% at the operating point (the KS value
    // includes the dipolar branch the local model lacks).
    let op = OperatingPoint::paper().expect("valid");
    let backend = MumagBackend::fast();
    let vg_disc = backend.group_velocity(55e-9);
    let rel = (op.group_velocity() - vg_disc).abs() / op.group_velocity();
    assert!(
        rel < 0.3,
        "vg mismatch: KS {} vs discrete {} ({rel:.2})",
        op.group_velocity(),
        vg_disc
    );
}

#[test]
fn lattice_anisotropy_is_small_but_nonzero() {
    // The compensation machinery exists because of this effect; verify
    // its magnitude is in the expected band at λ/8 sampling.
    let backend = MumagBackend::fast();
    let f = backend.drive_frequency(55e-9);
    let k0 = backend.discrete_wavenumber(f, 0.0).expect("axis");
    let k45 = backend.discrete_wavenumber(f, PI / 4.0).expect("diagonal");
    let rel = (k45 - k0).abs() / k0;
    assert!(rel > 1e-4 && rel < 0.03, "lattice anisotropy {rel}");
}
