//! §IV-D variability: the gates keep functioning under lithographic
//! edge roughness (the effect the paper defers to [36], [43]).

use swgates::encoding::Bit;
use swgates::prelude::*;

fn mini_xor_layout() -> TriangleXorLayout {
    TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9).expect("valid mini layout")
}

#[test]
fn xor_survives_one_nanometre_edge_roughness() {
    let backend = MumagBackend::fast()
        .with_edge_roughness(1e-9, 20e-9, 7)
        .with_measure_periods(3);
    let gate = XorGate::new(mini_xor_layout());
    let table = gate.truth_table(&backend).expect("simulations run");
    table
        .verify(|p| Bit::xor(p[0], p[1]))
        .expect("XOR survives ±1 nm edge roughness");
}

#[test]
fn roughness_is_deterministic_per_seed() {
    let layout = mini_xor_layout();
    let run = |seed: u64| {
        let backend = MumagBackend::fast()
            .with_edge_roughness(2e-9, 20e-9, seed)
            .with_measure_periods(2);
        backend
            .xor_outputs(&layout, [Bit::Zero, Bit::Zero])
            .expect("runs")
    };
    let (a1, a2) = run(3);
    let (b1, b2) = run(3);
    assert_eq!(a1, b1, "same seed must reproduce O1 exactly");
    assert_eq!(a2, b2);
    let (c1, _) = run(4);
    assert_ne!(a1, c1, "different seeds must differ");
}

#[test]
fn roughness_perturbs_but_does_not_destroy_the_outputs() {
    let layout = mini_xor_layout();
    let smooth = MumagBackend::fast().with_measure_periods(2);
    let rough = MumagBackend::fast()
        .with_edge_roughness(2e-9, 20e-9, 11)
        .with_measure_periods(2);
    let (s1, _) = smooth
        .xor_outputs(&layout, [Bit::Zero, Bit::Zero])
        .expect("runs");
    let (r1, _) = rough
        .xor_outputs(&layout, [Bit::Zero, Bit::Zero])
        .expect("runs");
    // The rough gate still transmits a usable constructive signal. The
    // simulated guides are ~22 nm wide (0.4·λ, see MumagBackend docs),
    // so ±2 nm roughness is a ~10 % width perturbation and scatters
    // appreciably — but must not extinguish the signal.
    let ratio = r1.abs() / s1.abs();
    assert!(
        (0.1..2.0).contains(&ratio),
        "roughness changed the signal by {ratio}x"
    );
}
