//! Cross-crate integration tests for the micromagnetic backend: the
//! in-silico MuMax3-style validation of §IV on scaled-down gates.
//!
//! These run full LLG simulations; the geometries are miniature
//! (λ-multiples 2-4 instead of the paper's 4-16) so the suite stays in
//! CI territory while exercising exactly the same code paths as the
//! full-size `repro --mumag` experiments.

use swgates::encoding::Bit;
use swgates::prelude::*;

fn mini_xor_layout() -> TriangleXorLayout {
    TriangleXorLayout::new(55e-9, 50e-9, 110e-9, 40e-9).expect("valid mini layout")
}

fn mini_maj3_layout() -> TriangleMaj3Layout {
    TriangleMaj3Layout::from_multiples(55e-9, 50e-9, 2, 3, 4, 1).expect("valid mini layout")
}

#[test]
fn xor_truth_table_is_correct_micromagnetically() {
    let backend = MumagBackend::fast().with_measure_periods(3);
    let gate = XorGate::new(mini_xor_layout());
    let table = gate.truth_table(&backend).expect("simulations run");
    table
        .verify(|p| Bit::xor(p[0], p[1]))
        .expect("XOR decodes with threshold 0.5");
    // Table II shape: equal inputs strong, unequal suppressed.
    let strong = table.min_normalized_where(|r| r.inputs[0] == r.inputs[1]);
    let weak = table.max_normalized_where(|r| r.inputs[0] != r.inputs[1]);
    assert!(strong > 0.9, "strong rows at {strong}");
    assert!(weak < 0.35, "weak rows at {weak}");
    // Fan-out of 2: identical outputs within a few percent.
    assert!(
        table.max_fanout_mismatch() < 0.1,
        "fan-out mismatch {}",
        table.max_fanout_mismatch()
    );
}

#[test]
fn maj3_decodes_majority_micromagnetically() {
    let backend = MumagBackend::fast().with_measure_periods(3);
    let gate = Maj3Gate::new(mini_maj3_layout()).with_phase_margin(std::f64::consts::PI / 32.0);
    let table = gate.truth_table(&backend).expect("simulations run");
    table
        .verify(|p| Bit::majority(p[0], p[1], p[2]))
        .expect("majority decodes by phase at both outputs");
    // Unanimous patterns carry full amplitude.
    for row in table.rows() {
        let unanimous = row.inputs.iter().all(|&b| b == row.inputs[0]);
        if unanimous {
            assert!(
                (row.outputs.o1.normalized - 1.0).abs() < 0.1,
                "unanimous {:?} amplitude {}",
                row.inputs,
                row.outputs.o1.normalized
            );
        }
    }
}

#[test]
fn maj3_transfer_is_cached_and_balanced() {
    let backend = MumagBackend::fast();
    let layout = mini_maj3_layout();
    let trims = backend.maj3_trims(&layout).expect("calibration runs");
    assert_eq!(trims.len(), 3);
    // Second call must be served from the cache (same values).
    let again = backend.maj3_trims(&layout).expect("cached");
    for (a, b) in trims.iter().zip(again.iter()) {
        assert_eq!(a.amplitude_scale, b.amplitude_scale);
        assert_eq!(a.phase_offset, b.phase_offset);
    }
    // Trims are physical: scales in (0, 1], phases finite.
    for t in &trims {
        assert!(t.amplitude_scale > 0.0 && t.amplitude_scale <= 1.0 + 1e-12);
        assert!(t.phase_offset.is_finite());
    }
}

#[test]
fn single_input_transfer_reaches_both_outputs() {
    let backend = MumagBackend::fast();
    let transfer = backend
        .xor_transfer(&mini_xor_layout())
        .expect("transfer runs");
    assert_eq!(transfer.len(), 2);
    for (i, (o1, o2)) in transfer.iter().enumerate() {
        assert!(o1.abs() > 1e-7, "input {i} does not reach O1");
        assert!(o2.abs() > 1e-7, "input {i} does not reach O2");
        // The fan-out splitter delivers comparable copies.
        let ratio = o1.abs() / o2.abs();
        assert!((0.5..2.0).contains(&ratio), "input {i} split ratio {ratio}");
    }
}

#[test]
fn thermal_noise_at_100k_does_not_corrupt_the_xor() {
    // §IV-D: "the gates function correctly at different temperatures".
    // Note the paper itself did NOT simulate temperature (it cites [36],
    // [43]); this is our extension. At 100 K the thermal-magnon
    // background in a 1 nm film is comparable to a weakly driven signal,
    // so the readout needs a stronger drive and a longer DFT window to
    // average the stochastic field down. The thermal field obeys
    // fluctuation–dissipation cell by cell, so the film sits at a
    // genuine 100 K magnon equilibrium (the absorbing frames radiate as
    // well as absorb) — margins are tighter than a uniform-α model
    // would suggest, and a thermally excited resonant magnon at the
    // drive frequency can ring for ~1/(α·ω) ≈ 4 ns, comparable to the
    // whole DFT window, so the realization (seed) matters: 80 kA/m
    // antennas and 32 measured periods keep the threshold detector
    // clear of the 0.5 decision line.
    let backend = MumagBackend::fast()
        .with_temperature(100.0, 7)
        .with_drive_amplitude(80e3)
        .with_measure_periods(32);
    let gate = XorGate::new(mini_xor_layout());
    let table = gate.truth_table(&backend).expect("simulations run");
    table
        .verify(|p| Bit::xor(p[0], p[1]))
        .expect("XOR survives thermal noise at 100 K");
}

#[test]
fn snapshots_capture_the_wave_pattern() {
    let backend = MumagBackend::fast().with_measure_periods(2);
    let run = backend
        .xor_run(&mini_xor_layout(), [Bit::Zero, Bit::Zero])
        .expect("run");
    let snap = &run.snapshot;
    // The interference pattern leaves a visible m_x ripple.
    assert!(snap.max() > 1e-4, "no wave recorded: max {}", snap.max());
    assert!(snap.min() < -1e-4);
    // CSV export is well-formed.
    let csv = snap.to_csv();
    assert!(csv.lines().count() > 100);
    assert!(csv.starts_with("ix,iy,value"));
}
