//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;

use magnum::math::{Complex64, Vec3};
use swgates::circuit::{Circuit, GateKind, Signal};
use swgates::encoding::Bit;
use swgates::prelude::*;
use swgates::wavemodel::JunctionModel;

fn arbitrary_bit() -> impl Strategy<Value = Bit> {
    prop_oneof![Just(Bit::Zero), Just(Bit::One)]
}

proptest! {
    /// Phase encoding is an involution: decode(encode(b)) == b for any
    /// phase detector reference-consistent setup.
    #[test]
    fn phase_encoding_round_trips(b in arbitrary_bit()) {
        let detector = swgates::detect::PhaseDetector::new(0.0);
        prop_assert_eq!(detector.decode(b.phase()).unwrap(), b);
    }

    /// The analytic MAJ3 gate computes the majority for every pattern,
    /// any valid λ-multiple geometry, with both outputs in agreement.
    #[test]
    fn maj3_is_majority_for_random_layouts(
        n1 in 1u32..6,
        n2 in 1u32..10,
        n3 in 1u32..6,
        n4 in 1u32..3,
        bits in prop::array::uniform3(arbitrary_bit()),
    ) {
        let layout = TriangleMaj3Layout::from_multiples(55e-9, 50e-9, n1, n2, n3, n4)
            .expect("multiples are valid by construction");
        let gate = Maj3Gate::new(layout);
        let backend = AnalyticBackend::paper();
        let out = gate.evaluate(&backend, bits).expect("decodable");
        prop_assert_eq!(out.o1.bit, Bit::majority(bits[0], bits[1], bits[2]));
        prop_assert_eq!(out.o2.bit, out.o1.bit);
    }

    /// XOR holds for any valid geometry and input pattern.
    #[test]
    fn xor_is_xor_for_random_layouts(
        n1 in 1u32..8,
        d2_nm in 10.0f64..100.0,
        bits in prop::array::uniform2(arbitrary_bit()),
    ) {
        let layout = TriangleXorLayout::new(
            55e-9,
            50e-9,
            n1 as f64 * 55e-9,
            d2_nm * 1e-9,
        ).expect("valid by construction");
        let gate = XorGate::new(layout);
        let out = gate.evaluate(&AnalyticBackend::paper(), bits).expect("decodable");
        prop_assert_eq!(out.o1.bit, Bit::xor(bits[0], bits[1]));
    }

    /// The junction model never creates energy: |out|² ≤ |a|² + |b|².
    #[test]
    fn junction_is_passive(
        ar in -1.0f64..1.0, ai in -1.0f64..1.0,
        br in -1.0f64..1.0, bi in -1.0f64..1.0,
        t in 0.1f64..1.0, beta in 0.0f64..4.0,
    ) {
        let j = JunctionModel::new(t, beta).expect("valid");
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let out = j.combine(a, b);
        prop_assert!(out.abs_sq() <= a.abs_sq() + b.abs_sq() + 1e-12,
            "junction created energy: |out|² = {} > {}", out.abs_sq(), a.abs_sq() + b.abs_sq());
    }

    /// Junction output is symmetric in its arguments.
    #[test]
    fn junction_is_symmetric(
        ar in -1.0f64..1.0, ai in -1.0f64..1.0,
        br in -1.0f64..1.0, bi in -1.0f64..1.0,
    ) {
        let j = JunctionModel::calibrated();
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        prop_assert!((j.combine(a, b) - j.combine(b, a)).abs() < 1e-12);
    }

    /// Vec3 normalization invariants (exercised across every solver step).
    #[test]
    fn vec3_normalized_has_unit_norm(
        x in -1e3f64..1e3, y in -1e3f64..1e3, z in -1e3f64..1e3,
    ) {
        let v = Vec3::new(x, y, z);
        prop_assume!(v.norm() > 1e-9);
        prop_assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
    }

    /// Circuit evaluation matches a plain functional model on random
    /// 2-level netlists.
    #[test]
    fn circuits_match_reference_evaluation(
        kinds in prop::collection::vec(
            prop_oneof![
                Just(GateKind::And), Just(GateKind::Or),
                Just(GateKind::Xor), Just(GateKind::Nand),
                Just(GateKind::Nor), Just(GateKind::Xnor),
            ],
            1..5,
        ),
        inputs in prop::collection::vec(arbitrary_bit(), 4),
    ) {
        let mut circuit = Circuit::new(4);
        let mut reference: Vec<Box<dyn Fn(&[Bit]) -> Bit>> = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            let a = i % 4;
            let b = (i + 1) % 4;
            let signal = circuit
                .add_gate(*kind, vec![Signal::Input(a), Signal::Input(b)])
                .expect("valid");
            circuit.mark_output(signal).expect("valid");
            let k = *kind;
            reference.push(Box::new(move |x: &[Bit]| k.eval(&[x[a], x[b]])));
        }
        let out = circuit.evaluate(&inputs).expect("evaluates");
        for (o, r) in out.iter().zip(reference.iter()) {
            prop_assert_eq!(*o, r(&inputs));
        }
    }

    /// The FO2 accounting: a ripple-carry adder of any width stays
    /// within the fan-out budget and adds correctly.
    #[test]
    fn adders_add(n in 1usize..10, a in 0u64..512, b in 0u64..512, cin in 0u64..2) {
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        let adder = Circuit::ripple_carry_adder(n);
        prop_assert!(adder.fanout_violations().is_empty());
        let mut inputs = Vec::new();
        for i in 0..n { inputs.push(Bit::from_bool(a >> i & 1 == 1)); }
        for i in 0..n { inputs.push(Bit::from_bool(b >> i & 1 == 1)); }
        inputs.push(Bit::from_bool(cin == 1));
        let out = adder.evaluate(&inputs).expect("evaluates");
        let mut sum = 0u64;
        for (i, bit) in out.iter().enumerate() {
            sum |= (bit.as_u8() as u64) << i;
        }
        prop_assert_eq!(sum, a + b + cin);
    }

    /// Attenuation monotonicity: longer paths never increase amplitude.
    #[test]
    fn decay_is_monotone(d1 in 0.0f64..5e-6, d2 in 0.0f64..5e-6) {
        let op = OperatingPoint::paper().expect("valid");
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(op.decay_over(far) <= op.decay_over(near) + 1e-15);
    }
}
